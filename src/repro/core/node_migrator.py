"""The Node Migrator (the adaptive half of greedy-adaptive partitioning).

The radical greedy heuristic is deliberately imprecise: it places a node
next to its *first* neighbor without checking the rest.  While
processing path-matching queries, PIM modules report nodes that miss
most of their next hops locally; after the query finishes, the host CPU
migrates those nodes to the partition holding most of their neighbors,
restoring graph locality at a cost proportional to the (small) number of
misplaced nodes.

The migrator is also responsible for the labor-division moves: when a
node's out-degree crosses the high-degree threshold, its row is promoted
from its PIM module to the host's heterogeneous storage.

Every row move goes through the storages' ``remove_row``/``insert_row``
pair, which records the move in each storage's snapshot
:class:`~repro.core.snapshot.DeltaOverlay` — a migration dirties exactly
two rows (one per storage), so the next query's snapshot refresh splices
rather than rebuilds.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.hetero_storage import HeterogeneousGraphStorage
from repro.core.local_storage import BYTES_PER_ENTRY, LocalGraphStorage
from repro.core.partitioner import GraphPartitioner
from repro.partition.base import HOST_PARTITION
from repro.pim.system import OperationContext


class NodeMigrator:
    """Relocates misplaced nodes and promotes new high-degree nodes."""

    def __init__(
        self,
        partitioner: GraphPartitioner,
        module_storages: List[LocalGraphStorage],
        host_storage: HeterogeneousGraphStorage,
        capacity_factor: float = 1.05,
    ) -> None:
        self._partitioner = partitioner
        self._module_storages = module_storages
        self._host_storage = host_storage
        #: Same capacity-constraint proportion as the partitioner: a node
        #: is only migrated when the target module has headroom, so the
        #: adaptive phase cannot undo the load balance the greedy phase
        #: enforced.
        self._capacity_factor = capacity_factor
        #: Nodes reported as misplaced since the last migration pass.
        self._pending: Dict[int, Tuple[int, int]] = {}
        #: Lifetime number of locality migrations performed.
        self.migrations_performed = 0
        #: Lifetime number of promotions to the host performed.
        self.promotions_performed = 0
        #: ``(node, from_module, to_module)`` moves of the most recent
        #: :meth:`apply_migrations` pass — the partition-map change
        #: journal the durability layer appends to the WAL.
        self.last_moves: List[Tuple[int, int, int]] = []

    # ------------------------------------------------------------------
    # Reporting (called by the query processor with module reports)
    # ------------------------------------------------------------------
    def report_misplaced(self, node: int, local: int, remote: int) -> None:
        """Record that ``node`` missed most of its next hops locally."""
        self._pending[node] = (local, remote)

    @property
    def pending_reports(self) -> int:
        """Number of nodes currently reported as misplaced."""
        return len(self._pending)

    # ------------------------------------------------------------------
    # Locality migration
    # ------------------------------------------------------------------
    def _majority_partition(self, node: int, current: int) -> Optional[int]:
        """PIM partition holding most of ``node``'s next hops.

        Returns ``None`` unless some other partition holds *strictly more*
        next hops than the current one — moving on a tie would only churn.
        """
        storage = self._module_storages[current]
        votes: Dict[int, int] = {}
        for destination in storage.next_hops(node):
            partition = self._partitioner.partition_of(destination)
            if partition is None or partition == HOST_PARTITION:
                continue
            votes[partition] = votes.get(partition, 0) + 1
        if not votes:
            return None
        target, count = max(votes.items(), key=lambda item: (item[1], -item[0]))
        if target != current and count <= votes.get(current, 0):
            return None
        return target

    def _target_has_headroom(self, target: int) -> bool:
        sizes = self._partitioner.partition_map.pim_sizes()
        average = sum(sizes) / max(1, len(sizes))
        return sizes[target] + 1 <= self._capacity_factor * max(average, 1.0)

    def apply_migrations(
        self,
        op: Optional[OperationContext] = None,
        limit: int = 4096,
    ) -> int:
        """Migrate reported nodes to their majority partitions.

        Parameters
        ----------
        op:
            Operation context to charge migration costs against (row data
            crosses the inter-PIM channel, host updates the partition
            vector).  ``None`` performs the moves without accounting,
            which is what bulk loading uses.
        limit:
            Maximum number of nodes to migrate in this pass.

        Returns
        -------
        int
            Number of nodes actually migrated.
        """
        self.last_moves = []
        if not self._pending:
            return 0
        migrated = 0
        # Sorted by node id so the outcome is independent of report
        # order: the execution engines discover misplaced nodes in
        # different orders, but headroom checks (and the migration limit)
        # must resolve identically for every backend.
        for node in sorted(self._pending):
            if migrated >= limit:
                break
            local, remote = self._pending.pop(node)
            current = self._partitioner.partition_of(node)
            if current is None or current == HOST_PARTITION:
                continue
            target = self._majority_partition(node, current)
            if target is None or target == current:
                continue
            if not self._target_has_headroom(target):
                continue
            entries = self._module_storages[current].remove_row(node)
            self._module_storages[target].insert_row(node, entries)
            self._partitioner.migrate(node, target)
            migrated += 1
            self.migrations_performed += 1
            self.last_moves.append((node, current, target))
            if op is not None:
                row_bytes = max(1, len(entries)) * BYTES_PER_ENTRY
                op.ipc_transfer(row_bytes, src_module=current, dst_module=target)
                op.module(current).random_accesses(1)
                op.module(target).random_accesses(1)
                op.module(target).process_items(len(entries))
                op.host.process_items(1)
        self._pending.clear()
        return migrated

    def replay_move(self, node: int, source: int, target: int) -> None:
        """Redo one journaled migration during recovery.

        The decision was already made (and logged) by the original run;
        replay just moves the row and the partition-map entry, with no
        simulated accounting — the original pass charged it, and
        lifetime platform counters are restored from the checkpoint.
        """
        if source == HOST_PARTITION or target == HOST_PARTITION:
            raise ValueError("migration journal entries move between PIM modules")
        entries = self._module_storages[source].remove_row(node)
        self._module_storages[target].insert_row(node, entries)
        self._partitioner.migrate(node, target)
        self.migrations_performed += 1

    def clear_pending(self) -> None:
        """Drop all pending reports.

        Recovery calls this after replaying a ``MIGRATIONS`` journal
        record: the original :meth:`apply_migrations` pass consumed
        *every* report (including ones it skipped for headroom or tie
        votes), so reports restored from an older checkpoint must not
        outlive the replayed pass — they would migrate nodes the
        uncrashed run never touched.
        """
        self._pending.clear()

    def capture_pending(self) -> List[Tuple[int, int, int]]:
        """Misplacement reports not yet migrated (checkpointed as-is)."""
        return sorted(
            (node, local, remote)
            for node, (local, remote) in self._pending.items()
        )

    def restore_pending(self, reports: List[Tuple[int, int, int]]) -> None:
        """Re-seed the pending misplacement reports from a checkpoint."""
        self._pending = {node: (local, remote) for node, local, remote in reports}

    # ------------------------------------------------------------------
    # Labor-division promotion
    # ------------------------------------------------------------------
    def promote_to_host(
        self,
        node: int,
        source_partition: int,
        op: Optional[OperationContext] = None,
    ) -> None:
        """Move ``node``'s row from a PIM module to the host's storage.

        Called when the node's out-degree crosses the high-degree
        threshold.  The partition map is assumed to have been updated
        already (the labor-division partitioner does it when it observes
        the degree change); this method moves the data and charges the
        transfer.
        """
        if source_partition == HOST_PARTITION:
            return
        entries = self._module_storages[source_partition].remove_row(node)
        self._host_storage.insert_row(node, entries)
        self.promotions_performed += 1
        if op is not None:
            row_bytes = max(1, len(entries)) * BYTES_PER_ENTRY
            op.cpc_transfer(row_bytes)
            op.module(source_partition).random_accesses(1)
            op.host.process_items(len(entries))
