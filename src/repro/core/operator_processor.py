"""The Operator Processor running on every PIM module.

Each PIM module parses operators received from the host and executes
them against its local graph storage.  In the simulator the processor
performs the real data manipulation (so results are exact) and reports
*work counters* that the query/update processors convert into simulated
time on the owning :class:`~repro.pim.module.PIMModule`.

While expanding a frontier, the processor also performs the paper's
misplacement detection: a node whose next hops mostly live outside the
local module is reported as incorrectly partitioned, overlapping the
detection with query processing exactly as Section 3.2.2 describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.local_storage import BYTES_PER_ENTRY, LocalGraphStorage
from repro.graph.stream import UpdateKind
from repro.rpq.automaton import DFA
from repro.rpq.query import ContextSet


@dataclass
class SmxmWork:
    """Work performed by one module during one ``smxm`` operator."""

    #: Hash-map row lookups (random local-memory accesses).
    rows_touched: int = 0
    #: Bytes of row data streamed from local memory.
    bytes_streamed: int = 0
    #: Items processed by the wimpy core (one per produced frontier entry).
    items_processed: int = 0
    #: Nodes whose next hops are mostly non-local: ``node -> (local, remote)``.
    misplacement_reports: Dict[int, Tuple[int, int]] = field(default_factory=dict)


@dataclass
class UpdateWork:
    """Work performed by one module during an ``add``/``sub`` operator."""

    map_lookups: int = 0
    bytes_streamed: int = 0
    items_processed: int = 0
    applied: int = 0


class OperatorProcessor:
    """Executes operators against one module's local graph storage."""

    def __init__(
        self,
        module_id: int,
        storage: LocalGraphStorage,
        misplacement_threshold: float = 0.5,
    ) -> None:
        self.module_id = module_id
        self.storage = storage
        self.misplacement_threshold = misplacement_threshold

    # ------------------------------------------------------------------
    # smxm
    # ------------------------------------------------------------------
    def process_smxm(
        self,
        frontier: Dict[int, ContextSet],
        dfa: Optional[DFA] = None,
        label_names: Optional[Dict[int, str]] = None,
        detect_misplacement: bool = True,
    ) -> Tuple[Dict[int, ContextSet], SmxmWork]:
        """Expand ``frontier`` against the local adjacency segment.

        Parameters
        ----------
        frontier:
            ``node -> set of contexts``; a context is a query row (k-hop
            plans) or a ``(row, automaton_state)`` pair (general RPQs).
        dfa:
            When given, contexts are ``(row, state)`` pairs and each edge
            label steps the automaton; contexts that the automaton
            rejects are dropped.
        label_names:
            Integer-label to query-label-string mapping for DFA stepping.
        detect_misplacement:
            Whether to report nodes whose next hops are mostly remote.

        Returns
        -------
        (produced, work):
            ``produced`` maps destination node to the set of contexts now
            sitting on it; ``work`` holds the counters to charge.
        """
        produced: Dict[int, ContextSet] = {}
        work = SmxmWork()
        for node, contexts in frontier.items():
            next_hops = self.storage.next_hops_with_labels(node)
            work.rows_touched += 1
            work.bytes_streamed += len(next_hops) * BYTES_PER_ENTRY
            if not next_hops:
                continue
            local = 0
            for destination, label in next_hops:
                if self.storage.has_row(destination):
                    local += 1
                if dfa is None:
                    work.items_processed += len(contexts)
                    produced.setdefault(destination, set()).update(contexts)
                else:
                    label_string = (
                        label_names[label]
                        if label_names and label in label_names
                        else str(label)
                    )
                    for context in contexts:
                        work.items_processed += 1
                        row, state = context
                        next_state = dfa.step(state, label_string)
                        if next_state is None:
                            continue
                        produced.setdefault(destination, set()).add((row, next_state))
            if detect_misplacement:
                remote = len(next_hops) - local
                if remote > 0 and remote / len(next_hops) > self.misplacement_threshold:
                    work.misplacement_reports[node] = (local, remote)
        return produced, work

    # ------------------------------------------------------------------
    # add / sub
    # ------------------------------------------------------------------
    def process_add(self, edges: List[Tuple[int, int, int]]) -> UpdateWork:
        """Apply a batch of edge insertions to the local segment."""
        return self.process_update_ops(
            [(UpdateKind.INSERT, src, dst, label) for src, dst, label in edges]
        )

    def process_sub(self, edges: List[Tuple[int, int]]) -> UpdateWork:
        """Apply a batch of edge deletions to the local segment."""
        return self.process_update_ops(
            [(UpdateKind.DELETE, src, dst, 0) for src, dst in edges]
        )

    def process_update_ops(
        self, entries: List[Tuple[UpdateKind, int, int, int]]
    ) -> UpdateWork:
        """Apply a mixed ``(kind, src, dst, label)`` sequence in order.

        Applying insertions and deletions interleaved (rather than one
        whole operator after the other) keeps a delete→insert of the
        same edge within one batch at its sequential result.
        """
        work = UpdateWork()
        for kind, src, dst, label in entries:
            row_length = self.storage.row_length(src)
            work.map_lookups += 1
            work.bytes_streamed += row_length * BYTES_PER_ENTRY
            work.items_processed += 1
            if kind is UpdateKind.INSERT:
                if self.storage.add_edge(src, dst, label):
                    work.applied += 1
            elif self.storage.remove_edge(src, dst):
                work.applied += 1
        return work
