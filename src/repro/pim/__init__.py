"""Simulator of a commodity processing-in-memory platform (UPMEM-like).

The paper evaluates Moctopus on real UPMEM hardware; this reproduction
substitutes an analytic simulator (see DESIGN.md).  The simulator keeps
the quantities that determine PIM performance — bytes moved per channel,
random accesses, and the maximum load across modules in each
bulk-synchronous phase — and converts them into latency with parameters
taken from the published UPMEM characterisation.

Public surface:

* :class:`CostModel` and the presets :data:`UPMEM_RANK` /
  :data:`UPMEM_FULL`;
* :class:`PIMSystem`, whose :meth:`~PIMSystem.begin_operation` returns an
  :class:`OperationContext` used to charge work phase by phase;
* :class:`ExecutionStats` with the host/CPC/IPC/PIM time breakdown;
* :class:`LocalMemory` / :class:`MemoryCapacityError` for the 64 MB
  per-module capacity constraint.
"""

from repro.pim.cost_model import UPMEM_FULL, UPMEM_RANK, CostModel
from repro.pim.host import HostCPU
from repro.pim.interconnect import Interconnect
from repro.pim.memory import LocalMemory, MemoryCapacityError
from repro.pim.module import PIMModule
from repro.pim.stats import ChannelCounters, ExecutionStats, ModuleCounters
from repro.pim.system import OperationContext, PIMSystem

__all__ = [
    "CostModel",
    "UPMEM_RANK",
    "UPMEM_FULL",
    "HostCPU",
    "Interconnect",
    "LocalMemory",
    "MemoryCapacityError",
    "PIMModule",
    "ChannelCounters",
    "ModuleCounters",
    "ExecutionStats",
    "OperationContext",
    "PIMSystem",
]
