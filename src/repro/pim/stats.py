"""Execution statistics collected by the PIM simulator.

Every engine in this reproduction produces a :class:`ExecutionStats`
object per operation (a batch query, an update batch, ...).  The object
records how much time was spent in each of the four places the paper's
analysis distinguishes:

* ``host_time``   — work executed on the host CPU core;
* ``cpc_time``    — CPU-PIM transfers (dispatching operators, gathering
  partial results, the ``mwait`` reduction);
* ``ipc_time``    — inter-PIM transfers (next hops owned by another
  module, forwarded through the host);
* ``pim_time``    — the *critical path* over PIM modules, i.e. the sum
  over bulk-synchronous phases of the maximum per-module busy time in
  that phase (modules work in parallel inside a phase).

The total latency is their sum, which is the bottleneck structure the
paper describes (Section 4.2: CPC and reduction become the bottleneck
for large k; Figure 5 reports the IPC component in isolation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class ChannelCounters:
    """Byte and transfer counters for one communication channel."""

    bytes_moved: int = 0
    transfers: int = 0

    def record(self, num_bytes: int, num_transfers: int = 1) -> None:
        """Accumulate a transfer of ``num_bytes``."""
        self.bytes_moved += num_bytes
        self.transfers += num_transfers

    def merge(self, other: "ChannelCounters") -> None:
        """Fold ``other`` into this counter."""
        self.bytes_moved += other.bytes_moved
        self.transfers += other.transfers


@dataclass
class ModuleCounters:
    """Work counters for a single PIM module within one phase."""

    bytes_streamed: int = 0
    random_accesses: int = 0
    items_processed: int = 0
    kernels_launched: int = 0

    def merge(self, other: "ModuleCounters") -> None:
        """Fold ``other`` into this counter."""
        self.bytes_streamed += other.bytes_streamed
        self.random_accesses += other.random_accesses
        self.items_processed += other.items_processed
        self.kernels_launched += other.kernels_launched


@dataclass
class ExecutionStats:
    """Time breakdown and raw counters of one simulated operation."""

    host_time: float = 0.0
    cpc_time: float = 0.0
    ipc_time: float = 0.0
    pim_time: float = 0.0
    #: Raw channel counters (bytes over CPC, bytes over IPC).
    cpc: ChannelCounters = field(default_factory=ChannelCounters)
    ipc: ChannelCounters = field(default_factory=ChannelCounters)
    #: Per-phase maximum module time, in execution order (diagnostic).
    phase_pim_times: List[float] = field(default_factory=list)
    #: Free-form named counters (e.g. ``"migrations"``, ``"results"``).
    counters: Dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def total_time(self) -> float:
        """End-to-end latency in seconds."""
        return self.host_time + self.cpc_time + self.ipc_time + self.pim_time

    @property
    def total_time_ms(self) -> float:
        """End-to-end latency in milliseconds."""
        return self.total_time * 1e3

    @property
    def ipc_time_ms(self) -> float:
        """IPC component in milliseconds (Figure 5 reports this)."""
        return self.ipc_time * 1e3

    def add_counter(self, name: str, amount: int = 1) -> None:
        """Increment the named free-form counter."""
        self.counters[name] = self.counters.get(name, 0) + amount

    def merge(self, other: "ExecutionStats") -> None:
        """Fold another operation's stats into this one (sequential composition)."""
        self.host_time += other.host_time
        self.cpc_time += other.cpc_time
        self.ipc_time += other.ipc_time
        self.pim_time += other.pim_time
        self.cpc.merge(other.cpc)
        self.ipc.merge(other.ipc)
        self.phase_pim_times.extend(other.phase_pim_times)
        for name, value in other.counters.items():
            self.counters[name] = self.counters.get(name, 0) + value

    def breakdown(self) -> Dict[str, float]:
        """Dictionary view of the time components (seconds)."""
        return {
            "host_time": self.host_time,
            "cpc_time": self.cpc_time,
            "ipc_time": self.ipc_time,
            "pim_time": self.pim_time,
            "total_time": self.total_time,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            "ExecutionStats("
            f"total={self.total_time_ms:.3f}ms, "
            f"host={self.host_time * 1e3:.3f}ms, "
            f"cpc={self.cpc_time * 1e3:.3f}ms, "
            f"ipc={self.ipc_time * 1e3:.3f}ms, "
            f"pim={self.pim_time * 1e3:.3f}ms)"
        )
