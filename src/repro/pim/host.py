"""The host CPU model.

The host side of the PIM platform is a conventional server CPU with a
large last-level cache.  Engines charge three kinds of work to it:

* sequential streaming (scanning a contiguous ``cols_vector`` of a
  high-degree node, packing operator payloads for transfer),
* dependent random accesses over a working set (pointer chasing through
  adjacency rows — cheap while the working set fits the LLC, a DRAM
  round-trip per access once it does not),
* per-item instruction work (set insertions during reduction, plan
  bookkeeping).

The distinction between cache-resident and DRAM-resident random access
is the crux of the paper's motivation, and it is what lets the
RedisGraph baseline be competitive on small/cache-friendly inputs while
losing on large pointer-chasing workloads.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.pim.cost_model import CostModel


@dataclass
class _HostPhaseCounters:
    sequential_bytes: int = 0
    random_accesses: int = 0
    random_working_set_bytes: int = 0
    items_processed: int = 0


class HostCPU:
    """The host processor of the simulated PIM platform."""

    def __init__(self, cost_model: CostModel) -> None:
        self._cost_model = cost_model
        self._phase = _HostPhaseCounters()
        #: Lifetime counters for diagnostics.
        self.lifetime_sequential_bytes = 0
        self.lifetime_random_accesses = 0
        self.lifetime_items_processed = 0

    # ------------------------------------------------------------------
    # Charging work
    # ------------------------------------------------------------------
    def stream_bytes(self, num_bytes: int) -> None:
        """Charge a sequential DRAM scan of ``num_bytes``."""
        self._phase.sequential_bytes += num_bytes
        self.lifetime_sequential_bytes += num_bytes

    def random_accesses(self, num_accesses: int, working_set_bytes: int) -> None:
        """Charge dependent random accesses over a working set.

        ``working_set_bytes`` is the size of the structure being chased;
        the cost model compares it against the LLC to decide whether each
        access is a cache hit or a DRAM round-trip.  When several charges
        with different working sets land in one phase, the largest
        working set wins (conservative: the mixed access stream behaves
        like its least cacheable component).
        """
        self._phase.random_accesses += num_accesses
        self._phase.random_working_set_bytes = max(
            self._phase.random_working_set_bytes, working_set_bytes
        )
        self.lifetime_random_accesses += num_accesses

    def process_items(self, num_items: int) -> None:
        """Charge ``num_items`` of per-item instruction work."""
        self._phase.items_processed += num_items
        self.lifetime_items_processed += num_items

    # ------------------------------------------------------------------
    # Phase lifecycle
    # ------------------------------------------------------------------
    def phase_busy_time(self) -> float:
        """Busy time accumulated in the current phase, in seconds."""
        model = self._cost_model
        counters = self._phase
        time = model.host_sequential_time(counters.sequential_bytes)
        time += model.host_random_access_time(
            counters.random_accesses, counters.random_working_set_bytes
        )
        time += model.host_compute_time(counters.items_processed)
        return time

    def reset_phase(self) -> None:
        """Start a new phase with zeroed counters."""
        self._phase = _HostPhaseCounters()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "HostCPU()"
