"""The simulated PIM platform: host + modules + interconnect.

:class:`PIMSystem` ties the component models together and provides the
bulk-synchronous execution abstraction every engine uses:

.. code-block:: python

    system = PIMSystem(CostModel(num_modules=64))
    op = system.begin_operation()
    with op.phase("smxm hop 1"):
        op.module(3).random_accesses(120)
        op.module(3).process_items(480)
        op.cpc_transfer(num_bytes=4096)
    with op.phase("mwait"):
        op.cpc_transfer(num_bytes=result_bytes, num_transfers=64)
        op.host.process_items(result_items)
    stats = op.finish()

Within a phase all modules work in parallel, so the phase's PIM time is
the **maximum** busy time across modules (this is where load imbalance
hurts: one overloaded module stalls the phase).  Host, CPC and IPC time
accumulate additively.  Phases execute back to back, matching the
paper's map-reduce style dispatch of matrix operators.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, List, Optional

from repro.pim.cost_model import CostModel
from repro.pim.host import HostCPU
from repro.pim.interconnect import Interconnect
from repro.pim.module import PIMModule
from repro.pim.stats import ExecutionStats


class OperationContext:
    """Accounting context of one simulated operation (a batch query, an update...)."""

    def __init__(self, system: "PIMSystem") -> None:
        self._system = system
        self._stats = ExecutionStats()
        self._in_phase = False
        self._finished = False

    # ------------------------------------------------------------------
    # Component access
    # ------------------------------------------------------------------
    @property
    def host(self) -> HostCPU:
        """The host CPU (charge host work through this)."""
        return self._system.host

    def module(self, module_id: int) -> PIMModule:
        """The PIM module with id ``module_id``."""
        return self._system.modules[module_id]

    @property
    def num_modules(self) -> int:
        """Number of PIM modules in the system."""
        return len(self._system.modules)

    def cpc_transfer(self, num_bytes: int, num_transfers: int = 1) -> None:
        """Charge CPU-PIM traffic to the current phase."""
        self._system.interconnect.cpc_transfer(num_bytes, num_transfers)

    def ipc_transfer(
        self,
        num_bytes: int,
        src_module: int = -1,
        dst_module: int = -1,
        num_transfers: int = 1,
    ) -> None:
        """Charge inter-PIM traffic (host-forwarded) to the current phase."""
        self._system.interconnect.ipc_transfer(
            num_bytes, src_module=src_module, dst_module=dst_module,
            num_transfers=num_transfers,
        )

    def add_counter(self, name: str, amount: int = 1) -> None:
        """Increment a free-form counter on the operation's stats."""
        self._stats.add_counter(name, amount)

    # ------------------------------------------------------------------
    # Phase lifecycle
    # ------------------------------------------------------------------
    @contextmanager
    def phase(self, name: str = "") -> Iterator["OperationContext"]:
        """Open a bulk-synchronous phase; close it to account its time."""
        if self._finished:
            raise RuntimeError("operation already finished")
        if self._in_phase:
            raise RuntimeError("phases cannot be nested")
        self._in_phase = True
        self._system.reset_phase()
        try:
            yield self
        finally:
            self._accumulate_phase()
            self._in_phase = False

    def _accumulate_phase(self) -> None:
        system = self._system
        module_times = [module.phase_busy_time() for module in system.modules]
        pim_time = max(module_times) if module_times else 0.0
        self._stats.pim_time += pim_time
        self._stats.phase_pim_times.append(pim_time)
        self._stats.host_time += system.host.phase_busy_time()
        self._stats.cpc_time += system.interconnect.phase_cpc_time()
        self._stats.ipc_time += system.interconnect.phase_ipc_time()
        traffic = system.interconnect.phase_counters()
        self._stats.cpc.merge(traffic.cpc)
        self._stats.ipc.merge(traffic.ipc)

    def finish(self) -> ExecutionStats:
        """Close the operation and return its statistics."""
        if self._in_phase:
            raise RuntimeError("cannot finish an operation while a phase is open")
        self._finished = True
        return self._stats


class PIMSystem:
    """The simulated platform: one host CPU, P PIM modules, shared channels."""

    def __init__(self, cost_model: Optional[CostModel] = None) -> None:
        self.cost_model = cost_model or CostModel()
        self.host = HostCPU(self.cost_model)
        self.modules: List[PIMModule] = [
            PIMModule(module_id, self.cost_model)
            for module_id in range(self.cost_model.num_modules)
        ]
        self.interconnect = Interconnect(self.cost_model)

    @property
    def num_modules(self) -> int:
        """Number of PIM modules."""
        return len(self.modules)

    def begin_operation(self) -> OperationContext:
        """Start accounting a new operation."""
        return OperationContext(self)

    def reset_phase(self) -> None:
        """Zero all per-phase counters (called by :class:`OperationContext`)."""
        for module in self.modules:
            module.reset_phase()
        self.host.reset_phase()
        self.interconnect.reset_phase()

    # ------------------------------------------------------------------
    # Checkpoint capture / restore (lifetime accounting)
    # ------------------------------------------------------------------
    def capture_lifetime(self) -> dict:
        """Lifetime counters of every component, as plain JSON-able data.

        Per-operation :class:`ExecutionStats` never depend on these —
        they exist so a recovered system keeps reporting the same
        load-balance and traffic diagnostics it would have shown had it
        never crashed (WAL replay re-charges only the tail's work).
        """
        return {
            "modules": [
                [
                    module.lifetime.bytes_streamed,
                    module.lifetime.random_accesses,
                    module.lifetime.items_processed,
                    module.lifetime.kernels_launched,
                ]
                for module in self.modules
            ],
            "host": [
                self.host.lifetime_sequential_bytes,
                self.host.lifetime_random_accesses,
                self.host.lifetime_items_processed,
            ],
            "cpc": [
                self.interconnect.lifetime_cpc.bytes_moved,
                self.interconnect.lifetime_cpc.transfers,
            ],
            "ipc": [
                self.interconnect.lifetime_ipc.bytes_moved,
                self.interconnect.lifetime_ipc.transfers,
            ],
        }

    def restore_lifetime(self, state: dict) -> None:
        """Re-seed the lifetime counters from a checkpoint capture."""
        for module, values in zip(self.modules, state["modules"]):
            (
                module.lifetime.bytes_streamed,
                module.lifetime.random_accesses,
                module.lifetime.items_processed,
                module.lifetime.kernels_launched,
            ) = (int(value) for value in values)
        (
            self.host.lifetime_sequential_bytes,
            self.host.lifetime_random_accesses,
            self.host.lifetime_items_processed,
        ) = (int(value) for value in state["host"])
        cpc, ipc = state["cpc"], state["ipc"]
        self.interconnect.lifetime_cpc.bytes_moved = int(cpc[0])
        self.interconnect.lifetime_cpc.transfers = int(cpc[1])
        self.interconnect.lifetime_ipc.bytes_moved = int(ipc[0])
        self.interconnect.lifetime_ipc.transfers = int(ipc[1])

    def absorb_lifetime(self, state: dict) -> None:
        """Add a captured lifetime delta onto this platform's counters.

        The parallel serving pool merges worker-side accounting with
        this: each worker task charges a fresh :class:`PIMSystem`, whose
        :meth:`capture_lifetime` is therefore exactly the task's delta,
        and the parent folds the deltas in here.  Counters are integer
        event counts, so the merged totals are bit-identical to charging
        the same operations on one platform in any order.
        """
        for module, values in zip(self.modules, state["modules"]):
            module.lifetime.bytes_streamed += int(values[0])
            module.lifetime.random_accesses += int(values[1])
            module.lifetime.items_processed += int(values[2])
            module.lifetime.kernels_launched += int(values[3])
        host = state["host"]
        self.host.lifetime_sequential_bytes += int(host[0])
        self.host.lifetime_random_accesses += int(host[1])
        self.host.lifetime_items_processed += int(host[2])
        cpc, ipc = state["cpc"], state["ipc"]
        self.interconnect.lifetime_cpc.bytes_moved += int(cpc[0])
        self.interconnect.lifetime_cpc.transfers += int(cpc[1])
        self.interconnect.lifetime_ipc.bytes_moved += int(ipc[0])
        self.interconnect.lifetime_ipc.transfers += int(ipc[1])

    def memory_utilization(self) -> List[float]:
        """Per-module local-memory utilisation (0.0 - 1.0)."""
        return [module.memory.utilization for module in self.modules]

    def load_report(self) -> List[int]:
        """Lifetime items processed per module (load-balance diagnostic)."""
        return [module.lifetime.items_processed for module in self.modules]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PIMSystem(num_modules={self.num_modules})"
