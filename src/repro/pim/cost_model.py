"""Cost model of the simulated PIM platform.

The paper implements Moctopus on UPMEM DIMMs and quotes the platform
characteristics measured by Gómez-Luna et al. (2021):

* 2048 PIM modules (DPUs) deliver about **1.28 TB/s** of aggregate
  intra-PIM bandwidth — i.e. roughly **625 MB/s per module** when a
  module streams its own local memory;
* total **CPU-PIM (CPC)** and **inter-PIM (IPC)** bandwidth is only about
  **25 GB/s**, *less than 2 %* of the aggregate intra-PIM bandwidth;
* IPC has no direct path: it is realised by the host CPU forwarding
  data, so an inter-PIM byte pays a PIM→CPU transfer, host handling and
  a CPU→PIM transfer;
* each PIM module has **64 MB** of local memory and a wimpy in-order
  core, so per-item processing is slow but fully parallel across
  modules;
* the host is a Xeon Silver with a **22 MB** LLC: accesses that hit the
  LLC are cheap, pointer-chasing beyond it pays DRAM latency — the
  "memory wall" the paper opens with.

:class:`CostModel` gathers these parameters and converts *event counts*
(bytes moved per channel, items processed per component) into seconds.
The simulator is therefore analytic rather than cycle-accurate: it keeps
exactly the quantities the paper's analysis depends on (who moves how
many bytes over which channel, and the maximum load across modules) and
nothing else.

All returned times are in **seconds**; reports convert to milliseconds.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict


@dataclass(frozen=True)
class CostModel:
    """Timing parameters of the simulated platform.

    The defaults model the paper's configuration: one UPMEM rank
    (64 PIM modules) plus one dedicated host CPU core.
    """

    # ------------------------------------------------------------------
    # PIM side
    # ------------------------------------------------------------------
    #: Number of PIM modules available to the system (one UPMEM rank).
    num_modules: int = 64
    #: Local memory capacity per module in bytes (UPMEM MRAM: 64 MB).
    module_memory_bytes: int = 64 * 1024 * 1024
    #: Streaming bandwidth of a module over its own local memory (B/s).
    intra_pim_bandwidth: float = 625e6
    #: Extra latency per random (hash-map) access inside a module (s).
    #: UPMEM MRAM accesses take ~100 ns once the DMA is issued.
    pim_random_access_latency: float = 150e-9
    #: Per-item instruction cost on the wimpy PIM core (s).  Covers the
    #: hash lookup / set-insert executed for every gathered next hop.
    pim_item_cost: float = 25e-9
    #: Fixed cost of launching a kernel (operator) on a module (s).
    pim_launch_latency: float = 2e-6

    # ------------------------------------------------------------------
    # Host side
    # ------------------------------------------------------------------
    #: Host last-level cache size in bytes (22 MB Xeon Silver LLC).
    host_llc_bytes: int = 22 * 1024 * 1024
    #: Host DRAM sequential bandwidth (B/s).
    host_sequential_bandwidth: float = 20e9
    #: Host DRAM random access latency (s) — one pointer chase.
    host_random_access_latency: float = 90e-9
    #: Host cache-hit access latency (s).
    host_cache_access_latency: float = 8e-9
    #: Per-item instruction cost on the host core (s); the host core is
    #: roughly an order of magnitude faster than a PIM core per item.
    host_item_cost: float = 2.5e-9

    # ------------------------------------------------------------------
    # Communication
    # ------------------------------------------------------------------
    #: Aggregate CPU-PIM bandwidth shared by all modules (B/s).
    cpc_bandwidth: float = 25e9
    #: Fixed latency per CPC batch transfer (s).
    cpc_transfer_latency: float = 20e-6
    #: Host per-byte handling cost while forwarding IPC traffic (s/B).
    ipc_forward_overhead: float = 1.0 / 25e9

    #: Bytes used to encode one node identifier on the wire and in memory.
    bytes_per_node_id: int = 8

    # ------------------------------------------------------------------
    # Derived helpers
    # ------------------------------------------------------------------
    def with_modules(self, num_modules: int) -> "CostModel":
        """Return a copy of the model with a different module count."""
        if num_modules <= 0:
            raise ValueError("num_modules must be positive")
        return replace(self, num_modules=num_modules)

    # Intra-PIM ---------------------------------------------------------
    def pim_stream_time(self, num_bytes: int) -> float:
        """Time for a module to stream ``num_bytes`` from local memory."""
        return num_bytes / self.intra_pim_bandwidth

    def pim_random_access_time(self, num_accesses: int) -> float:
        """Time for ``num_accesses`` random local-memory accesses."""
        return num_accesses * self.pim_random_access_latency

    def pim_compute_time(self, num_items: int) -> float:
        """Time for the wimpy core to process ``num_items`` items."""
        return num_items * self.pim_item_cost

    # Host --------------------------------------------------------------
    def host_sequential_time(self, num_bytes: int) -> float:
        """Time for the host to stream ``num_bytes`` from DRAM."""
        return num_bytes / self.host_sequential_bandwidth

    def host_random_access_time(self, num_accesses: int, working_set_bytes: int) -> float:
        """Time for ``num_accesses`` dependent accesses over a working set.

        Accesses within an LLC-resident working set cost
        :attr:`host_cache_access_latency`; otherwise each pays a DRAM
        pointer-chase.  This is the memory-wall switch: RedisGraph on a
        small graph lives in cache, on a large graph it does not.
        """
        if working_set_bytes <= self.host_llc_bytes:
            return num_accesses * self.host_cache_access_latency
        return num_accesses * self.host_random_access_latency

    def host_compute_time(self, num_items: int) -> float:
        """Time for the host core to process ``num_items`` items."""
        return num_items * self.host_item_cost

    # Communication ------------------------------------------------------
    def cpc_time(self, num_bytes: int, num_transfers: int = 1) -> float:
        """Time to move ``num_bytes`` over the CPU-PIM channel.

        ``num_transfers`` counts separately launched batch transfers, each
        paying the fixed :attr:`cpc_transfer_latency`.
        """
        return num_bytes / self.cpc_bandwidth + num_transfers * self.cpc_transfer_latency

    def ipc_time(self, num_bytes: int, num_transfers: int = 1) -> float:
        """Time to move ``num_bytes`` between PIM modules.

        IPC is realised by CPU forwarding: PIM→CPU plus CPU→PIM over the
        same shared channel, plus host handling, so it costs more than
        twice a CPC transfer of the same size.
        """
        channel_time = 2.0 * self.cpc_time(num_bytes, num_transfers)
        return channel_time + num_bytes * self.ipc_forward_overhead

    def node_ids_to_bytes(self, num_ids: int) -> int:
        """Wire/storage size of ``num_ids`` node identifiers."""
        return num_ids * self.bytes_per_node_id

    def describe(self) -> Dict[str, float]:
        """Flat parameter dictionary (used in benchmark report headers)."""
        return {
            "num_modules": self.num_modules,
            "module_memory_bytes": self.module_memory_bytes,
            "intra_pim_bandwidth": self.intra_pim_bandwidth,
            "cpc_bandwidth": self.cpc_bandwidth,
            "host_sequential_bandwidth": self.host_sequential_bandwidth,
            "host_llc_bytes": self.host_llc_bytes,
            "host_random_access_latency": self.host_random_access_latency,
            "pim_random_access_latency": self.pim_random_access_latency,
        }


#: Cost model matching the paper's evaluation platform (one UPMEM rank).
UPMEM_RANK = CostModel()

#: Cost model for a whole UPMEM system (2048 modules), for scaling studies.
UPMEM_FULL = CostModel(num_modules=2048)
