"""Communication channels of the PIM platform.

Two logical channels exist:

* **CPC** (CPU-PIM communication) — the host dispatches operators and
  payloads to modules and gathers partial results back.  All modules
  share roughly 25 GB/s of CPC bandwidth, so heavy result reduction
  serialises here.
* **IPC** (inter-PIM communication) — a module needs data owned by
  another module.  UPMEM has no direct module-to-module path: the host
  forwards the data, so IPC is strictly more expensive than CPC and the
  partitioning algorithm's whole purpose is to minimise it.

The :class:`Interconnect` records transfers during a phase; the system
converts them into time with the cost model at phase end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.pim.cost_model import CostModel
from repro.pim.stats import ChannelCounters


@dataclass
class _PhaseTraffic:
    cpc: ChannelCounters = field(default_factory=ChannelCounters)
    ipc: ChannelCounters = field(default_factory=ChannelCounters)
    #: Per (src_module, dst_module) IPC byte counts, for locality diagnostics.
    ipc_pairs: Dict[Tuple[int, int], int] = field(default_factory=dict)


class Interconnect:
    """Records CPC and IPC traffic and converts it into channel time."""

    def __init__(self, cost_model: CostModel) -> None:
        self._cost_model = cost_model
        self._phase = _PhaseTraffic()
        self.lifetime_cpc = ChannelCounters()
        self.lifetime_ipc = ChannelCounters()

    # ------------------------------------------------------------------
    # Charging traffic
    # ------------------------------------------------------------------
    def cpc_transfer(self, num_bytes: int, num_transfers: int = 1) -> None:
        """Charge a host<->module transfer of ``num_bytes``."""
        self._phase.cpc.record(num_bytes, num_transfers)
        self.lifetime_cpc.record(num_bytes, num_transfers)

    def ipc_transfer(
        self,
        num_bytes: int,
        src_module: int = -1,
        dst_module: int = -1,
        num_transfers: int = 1,
    ) -> None:
        """Charge a module->module transfer of ``num_bytes`` (host-forwarded)."""
        self._phase.ipc.record(num_bytes, num_transfers)
        self.lifetime_ipc.record(num_bytes, num_transfers)
        if src_module >= 0 and dst_module >= 0:
            key = (src_module, dst_module)
            self._phase.ipc_pairs[key] = self._phase.ipc_pairs.get(key, 0) + num_bytes

    # ------------------------------------------------------------------
    # Phase lifecycle
    # ------------------------------------------------------------------
    def phase_cpc_time(self) -> float:
        """CPC channel time of the current phase, in seconds."""
        counters = self._phase.cpc
        if counters.transfers == 0 and counters.bytes_moved == 0:
            return 0.0
        return self._cost_model.cpc_time(counters.bytes_moved, counters.transfers)

    def phase_ipc_time(self) -> float:
        """IPC channel time of the current phase, in seconds."""
        counters = self._phase.ipc
        if counters.transfers == 0 and counters.bytes_moved == 0:
            return 0.0
        return self._cost_model.ipc_time(counters.bytes_moved, counters.transfers)

    def phase_counters(self) -> _PhaseTraffic:
        """Traffic counters of the current phase (live reference)."""
        return self._phase

    def reset_phase(self) -> None:
        """Start a new phase with zeroed traffic."""
        self._phase = _PhaseTraffic()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Interconnect(cpc_bytes={self.lifetime_cpc.bytes_moved}, "
            f"ipc_bytes={self.lifetime_ipc.bytes_moved})"
        )
