"""Local memory capacity accounting for PIM modules.

Each UPMEM PIM module has only 64 MB of local memory, which is why the
master-slave replication scheme used by Neo4j (every computing node
stores the whole graph) is "nearly unfeasible" on PIM, as the paper puts
it.  The simulator enforces that constraint: graph storage engines
allocate their rows against a :class:`LocalMemory` and get a
:class:`MemoryCapacityError` when a module would overflow, which the
partitioner's capacity constraint is designed to prevent.
"""

from __future__ import annotations


class MemoryCapacityError(RuntimeError):
    """Raised when an allocation would exceed a module's local memory."""

    def __init__(self, requested: int, available: int, capacity: int) -> None:
        super().__init__(
            f"allocation of {requested} bytes exceeds available local memory "
            f"({available} of {capacity} bytes free)"
        )
        self.requested = requested
        self.available = available
        self.capacity = capacity


class LocalMemory:
    """Byte-granular capacity accounting (no address simulation)."""

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        self.capacity_bytes = capacity_bytes
        self._used_bytes = 0

    @property
    def used_bytes(self) -> int:
        """Bytes currently allocated."""
        return self._used_bytes

    @property
    def available_bytes(self) -> int:
        """Bytes still free."""
        return self.capacity_bytes - self._used_bytes

    @property
    def utilization(self) -> float:
        """Fraction of capacity in use (0.0 - 1.0)."""
        return self._used_bytes / self.capacity_bytes

    def allocate(self, num_bytes: int) -> None:
        """Reserve ``num_bytes``; raise :class:`MemoryCapacityError` on overflow."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        if self._used_bytes + num_bytes > self.capacity_bytes:
            raise MemoryCapacityError(
                requested=num_bytes,
                available=self.available_bytes,
                capacity=self.capacity_bytes,
            )
        self._used_bytes += num_bytes

    def free(self, num_bytes: int) -> None:
        """Release ``num_bytes`` previously allocated."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        if num_bytes > self._used_bytes:
            raise ValueError(
                f"freeing {num_bytes} bytes but only {self._used_bytes} are allocated"
            )
        self._used_bytes -= num_bytes

    def reset(self) -> None:
        """Release everything (used when a module is re-provisioned)."""
        self._used_bytes = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LocalMemory(used={self._used_bytes}, "
            f"capacity={self.capacity_bytes})"
        )
