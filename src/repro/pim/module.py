"""The PIM module model: a wimpy core plus a small local memory.

A :class:`PIMModule` does not execute real code; engines *charge* work
to it (bytes streamed from local memory, random local accesses, items
processed, kernels launched) and the system converts those charges into
a busy time per bulk-synchronous phase.  The module also owns a
persistent :class:`~repro.pim.memory.LocalMemory` so that graph storage
capacity is enforced across the whole lifetime of the system, not just
during one operation.
"""

from __future__ import annotations

from repro.pim.cost_model import CostModel
from repro.pim.memory import LocalMemory
from repro.pim.stats import ModuleCounters


class PIMModule:
    """One processing-in-memory module (an UPMEM DPU)."""

    def __init__(self, module_id: int, cost_model: CostModel) -> None:
        self.module_id = module_id
        self._cost_model = cost_model
        self.memory = LocalMemory(cost_model.module_memory_bytes)
        #: Counters for the phase currently being recorded.
        self._phase = ModuleCounters()
        #: Counters accumulated over the module's lifetime (diagnostics,
        #: load-balance reporting).
        self.lifetime = ModuleCounters()

    # ------------------------------------------------------------------
    # Charging work (called by engines during a phase)
    # ------------------------------------------------------------------
    def launch_kernel(self) -> None:
        """Charge one operator/kernel launch."""
        self._phase.kernels_launched += 1
        self.lifetime.kernels_launched += 1

    def stream_bytes(self, num_bytes: int) -> None:
        """Charge a sequential scan of ``num_bytes`` of local memory."""
        self._phase.bytes_streamed += num_bytes
        self.lifetime.bytes_streamed += num_bytes

    def random_accesses(self, num_accesses: int) -> None:
        """Charge ``num_accesses`` random local-memory accesses (hash lookups)."""
        self._phase.random_accesses += num_accesses
        self.lifetime.random_accesses += num_accesses

    def process_items(self, num_items: int) -> None:
        """Charge ``num_items`` of per-item instruction work on the core."""
        self._phase.items_processed += num_items
        self.lifetime.items_processed += num_items

    # ------------------------------------------------------------------
    # Phase lifecycle (called by the system)
    # ------------------------------------------------------------------
    def phase_busy_time(self) -> float:
        """Busy time accumulated in the current phase, in seconds."""
        model = self._cost_model
        counters = self._phase
        time = model.pim_stream_time(counters.bytes_streamed)
        time += model.pim_random_access_time(counters.random_accesses)
        time += model.pim_compute_time(counters.items_processed)
        time += counters.kernels_launched * model.pim_launch_latency
        return time

    def phase_counters(self) -> ModuleCounters:
        """Counters of the current phase (a live reference, not a copy)."""
        return self._phase

    def reset_phase(self) -> None:
        """Start a new phase with zeroed counters."""
        self._phase = ModuleCounters()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PIMModule(id={self.module_id}, "
            f"memory_used={self.memory.used_bytes})"
        )
