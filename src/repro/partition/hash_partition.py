"""Hash partitioning — the scheme of distributed graph databases.

The widely used baseline (G-Tran, ByteGraph, and the paper's *PIM-hash*
contrast system): every graph node is assigned to a computing node by a
consistent hash of its identifier.  Placement is O(1) and needs no
state, but it ignores graph locality entirely (any next hop is on a
random module, so almost every hop of a path query crosses modules) and
it inherits the skew of the graph (a module that happens to own several
hubs becomes the straggler).
"""

from __future__ import annotations

from typing import Optional

from repro.partition.base import StreamingPartitioner


def stable_node_hash(node: int, salt: int = 0x9E3779B1) -> int:
    """Deterministic 64-bit mix of a node id.

    Python's built-in ``hash`` of an ``int`` is the identity, which would
    turn "hash partitioning" into range partitioning and accidentally
    preserve locality for generators that allocate ids contiguously.  A
    Fibonacci/xorshift mix gives the uniform spread a real consistent
    hash would.
    """
    value = (node + salt) & 0xFFFFFFFFFFFFFFFF
    value ^= value >> 33
    value = (value * 0xFF51AFD7ED558CCD) & 0xFFFFFFFFFFFFFFFF
    value ^= value >> 33
    value = (value * 0xC4CEB9FE1A85EC53) & 0xFFFFFFFFFFFFFFFF
    value ^= value >> 33
    return value


class HashPartitioner(StreamingPartitioner):
    """Assign every node to ``stable_node_hash(node) % P``."""

    def __init__(self, num_partitions: int, salt: int = 0x9E3779B1) -> None:
        super().__init__(num_partitions)
        self._salt = salt

    def assign_node(self, node: int, first_neighbor: Optional[int] = None) -> int:
        """Place ``node`` by hashing its identifier (neighbor is ignored)."""
        partition = stable_node_hash(node, self._salt) % self.num_partitions
        self.partition_map.assign(node, partition)
        return partition
