"""Partition quality metrics.

The paper's graph partitioning goals are (a) load balance across PIM
modules and (b) graph locality — next hops should live on the same
module as their source so path matching avoids inter-PIM communication.
These metrics quantify both, and the ablation benchmarks report them
alongside simulated latency.

All metrics ignore host-resident nodes unless stated otherwise: the host
partition is deliberately special (it takes the hubs), so including it
in PIM balance numbers would be misleading.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.graph.digraph import DiGraph
from repro.partition.base import HOST_PARTITION, PartitionMap


@dataclass(frozen=True)
class PartitionQuality:
    """Summary of a partitioning of a specific graph."""

    #: Number of PIM partitions.
    num_partitions: int
    #: Nodes on each PIM partition.
    pim_sizes: List[int]
    #: Nodes on the host partition.
    host_nodes: int
    #: Fraction of edges whose endpoints sit on two *different* PIM
    #: partitions (these are the edges that cause IPC during matching).
    edge_cut_fraction: float
    #: Fraction of edges whose destination is co-located with the source
    #: (same PIM module, or source on the host).  Higher is better.
    locality_fraction: float
    #: max(PIM partition size) / mean(PIM partition size); 1.0 is perfect.
    balance_factor: float
    #: Fraction of edges with at least one endpoint on the host.
    host_edge_fraction: float

    def summary(self) -> Dict[str, float]:
        """Flat dictionary for report tables."""
        return {
            "edge_cut_fraction": self.edge_cut_fraction,
            "locality_fraction": self.locality_fraction,
            "balance_factor": self.balance_factor,
            "host_edge_fraction": self.host_edge_fraction,
            "host_nodes": float(self.host_nodes),
        }


def evaluate_partition(graph: DiGraph, partition_map: PartitionMap) -> PartitionQuality:
    """Compute :class:`PartitionQuality` for ``graph`` under ``partition_map``.

    Every node of the graph must be assigned; unassigned nodes raise
    ``ValueError`` because quality numbers over a partial assignment are
    meaningless.
    """
    for node in graph.nodes():
        if not partition_map.is_assigned(node):
            raise ValueError(f"node {node} is not assigned to any partition")

    total_edges = 0
    cut_edges = 0
    local_edges = 0
    host_edges = 0
    for src, dst in graph.edges():
        total_edges += 1
        src_partition = partition_map.partition_of(src)
        dst_partition = partition_map.partition_of(dst)
        touches_host = HOST_PARTITION in (src_partition, dst_partition)
        if touches_host:
            host_edges += 1
        if src_partition == dst_partition or src_partition == HOST_PARTITION:
            # Host-resident sources stream their whole next-hop array
            # locally, so they count as local regardless of destination.
            local_edges += 1
        if (
            src_partition != dst_partition
            and not touches_host
        ):
            cut_edges += 1

    pim_sizes = partition_map.pim_sizes()
    positive_sizes = [size for size in pim_sizes]
    mean_size = (sum(positive_sizes) / len(positive_sizes)) if positive_sizes else 0.0
    balance = (max(positive_sizes) / mean_size) if mean_size > 0 else 1.0

    return PartitionQuality(
        num_partitions=partition_map.num_partitions,
        pim_sizes=pim_sizes,
        host_nodes=partition_map.host_size(),
        edge_cut_fraction=(cut_edges / total_edges) if total_edges else 0.0,
        locality_fraction=(local_edges / total_edges) if total_edges else 1.0,
        balance_factor=balance,
        host_edge_fraction=(host_edges / total_edges) if total_edges else 0.0,
    )


def load_imbalance(loads: List[int]) -> float:
    """max/mean imbalance of arbitrary per-partition load numbers.

    Used on simulated per-module work counters (items processed during a
    query) as well as on node counts.
    """
    if not loads:
        return 1.0
    mean = sum(loads) / len(loads)
    if mean == 0:
        return 1.0
    return max(loads) / mean
