"""Adaptive repartitioning (Vaquero et al., SOCC 2013 style).

The *adaptive* family the paper contrasts with: nodes are initially
assigned by a hash function, then the system iteratively migrates nodes
toward the partition holding most of their neighbors.  It supports
dynamic graphs (no prior knowledge needed) but pays a large
communication price: every migration moves a node's adjacency data
between computing nodes.

Moctopus's greedy-adaptive method borrows the migration idea but only
applies it to the few nodes the radical greedy heuristic got wrong, so
its migration volume is a small fraction of a full adaptive pass.  The
implementation here is used by the partitioner ablation benchmark and as
a quality reference in tests.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from repro.graph.digraph import DiGraph
from repro.partition.base import PartitionMap, StreamingPartitioner
from repro.partition.hash_partition import stable_node_hash


class AdaptivePartitioner(StreamingPartitioner):
    """Hash placement plus iterative neighbor-majority migration."""

    def __init__(
        self,
        num_partitions: int,
        imbalance_tolerance: float = 1.10,
        salt: int = 0x9E3779B1,
    ) -> None:
        super().__init__(num_partitions)
        if imbalance_tolerance < 1.0:
            raise ValueError("imbalance_tolerance must be >= 1.0")
        self.imbalance_tolerance = imbalance_tolerance
        self._salt = salt
        #: Undirected neighborhood observed from the edge stream.
        self._neighbors: Dict[int, Set[int]] = {}
        #: Total node migrations performed (the overhead metric).
        self.migrations = 0

    # ------------------------------------------------------------------
    def ingest_edge(self, src: int, dst: int) -> Tuple[int, int]:
        """Observe the edge and keep the neighborhood index current."""
        self._neighbors.setdefault(src, set()).add(dst)
        self._neighbors.setdefault(dst, set()).add(src)
        return super().ingest_edge(src, dst)

    def assign_node(self, node: int, first_neighbor: Optional[int] = None) -> int:
        """Initial placement: plain hash (locality recovered later by migration)."""
        partition = stable_node_hash(node, self._salt) % self.num_partitions
        self.partition_map.assign(node, partition)
        return partition

    # ------------------------------------------------------------------
    def _majority_partition(self, node: int) -> Optional[int]:
        """Partition holding the most neighbors of ``node`` (None if isolated)."""
        votes: Dict[int, int] = {}
        for neighbor in self._neighbors.get(node, ()):  # pragma: no branch
            partition = self.partition_map.partition_of(neighbor)
            if partition is not None:
                votes[partition] = votes.get(partition, 0) + 1
        if not votes:
            return None
        best_partition, _ = max(votes.items(), key=lambda item: (item[1], -item[0]))
        return best_partition

    def _capacity_limit(self) -> float:
        assigned = len(self.partition_map)
        average = assigned / self.num_partitions if self.num_partitions else 0.0
        return self.imbalance_tolerance * max(average, 1.0)

    def migration_round(self) -> int:
        """One migration sweep; returns the number of nodes moved.

        Every assigned node is examined; if most of its neighbors live on
        a different partition and that partition is under the imbalance
        limit, the node moves there.
        """
        moved = 0
        limit = self._capacity_limit()
        for node, current in list(self.partition_map.items()):
            target = self._majority_partition(node)
            if target is None or target == current:
                continue
            if self.partition_map.size(target) + 1 > limit:
                continue
            self.partition_map.assign(node, target)
            moved += 1
        self.migrations += moved
        return moved

    def converge(self, max_rounds: int = 10) -> int:
        """Run migration rounds until no node moves (or ``max_rounds``)."""
        total = 0
        for _ in range(max_rounds):
            moved = self.migration_round()
            total += moved
            if moved == 0:
                break
        return total


def adaptive_partition_graph(
    graph: DiGraph,
    num_partitions: int,
    max_rounds: int = 10,
    imbalance_tolerance: float = 1.10,
) -> Tuple[PartitionMap, int]:
    """Partition a static graph with hash + adaptive migration.

    Returns the final mapping and the total number of migrations (the
    communication overhead the paper criticises this family for).
    """
    partitioner = AdaptivePartitioner(
        num_partitions, imbalance_tolerance=imbalance_tolerance
    )
    for src, dst in graph.edges():
        partitioner.ingest_edge(src, dst)
    for node in graph.nodes():
        if not partitioner.partition_map.is_assigned(node):
            partitioner.assign_node(node)
    migrations = partitioner.converge(max_rounds=max_rounds)
    return partitioner.partition_map, migrations
