"""Common interfaces for graph partitioners.

Moctopus partitions the graph *disjointly by node* across ``1 + P``
computing nodes: the host CPU plus ``P`` PIM modules.  Throughout this
package a partition id is an integer in ``0 .. P-1`` for PIM modules and
the sentinel :data:`HOST_PARTITION` (``-1``) for the host, matching the
paper's ``node_partition_vector`` where the host is marked ``H``.

Two interaction styles are supported:

* **streaming** — :meth:`StreamingPartitioner.ingest_edge` is called for
  every arriving edge, and the partitioner decides placements on the
  fly.  This is the graph-database setting the paper targets (the
  radical greedy heuristic decides when a node's *first* edge arrives).
* **static** — :func:`partition_static_graph` replays an existing graph
  through a streaming partitioner, which is how benchmarks load a
  generated dataset into a system.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import deque
from itertools import islice
from typing import Deque, Dict, Iterable, List, Optional, Tuple

from repro.graph.digraph import DiGraph

#: Partition id of the host CPU (the paper's ``H`` marker).
HOST_PARTITION = -1

#: Placement changes a :class:`PartitionMap` remembers for incremental
#: consumers (the vectorized owner index); older gaps force a rebuild.
JOURNAL_CAPACITY = 4096


class PartitionMap:
    """Mutable node -> partition mapping with per-partition size tracking."""

    def __init__(self, num_partitions: int) -> None:
        if num_partitions <= 0:
            raise ValueError("num_partitions must be positive")
        self.num_partitions = num_partitions
        self._assignment: Dict[int, int] = {}
        self._sizes: Dict[int, int] = {partition: 0 for partition in range(num_partitions)}
        self._sizes[HOST_PARTITION] = 0
        #: Bumped on every placement change; cheap staleness check for
        #: derived lookup structures (the vectorized engine's owner
        #: vector caches against it).
        self.version = 0
        #: Ring buffer of the most recent placement changes, in order;
        #: :meth:`changes_since` serves incremental consumers from it.
        self._journal: Deque[Tuple[int, int]] = deque(maxlen=JOURNAL_CAPACITY)

    def assign(self, node: int, partition: int) -> None:
        """Place ``node`` on ``partition`` (moving it if already placed)."""
        self._validate(partition)
        previous = self._assignment.get(node)
        if previous is not None:
            self._sizes[previous] -= 1
        self._assignment[node] = partition
        self._sizes[partition] += 1
        self._journal.append((node, partition))
        self.version += 1

    def changes_since(self, version: int) -> Optional[List[Tuple[int, int]]]:
        """Placement changes after ``version``, oldest first.

        Returns ``None`` when the gap exceeds the journal capacity (the
        caller must rebuild from scratch).  ``version`` is a value of
        :attr:`version` the caller observed earlier; one journal entry is
        appended per version bump, so the delta is the last
        ``current - version`` entries.
        """
        delta = self.version - version
        if delta < 0 or delta > len(self._journal):
            return None
        if delta == 0:
            return []
        return list(islice(self._journal, len(self._journal) - delta, None))

    def partition_of(self, node: int) -> Optional[int]:
        """Partition of ``node`` or ``None`` when unassigned."""
        return self._assignment.get(node)

    def is_assigned(self, node: int) -> bool:
        """Whether ``node`` has been placed."""
        return node in self._assignment

    def size(self, partition: int) -> int:
        """Number of nodes currently on ``partition``."""
        self._validate(partition)
        return self._sizes[partition]

    def pim_sizes(self) -> List[int]:
        """Node counts of the PIM partitions only (index = partition id)."""
        return [self._sizes[partition] for partition in range(self.num_partitions)]

    def host_size(self) -> int:
        """Number of nodes on the host partition."""
        return self._sizes[HOST_PARTITION]

    def nodes_on(self, partition: int) -> List[int]:
        """All nodes currently placed on ``partition``."""
        self._validate(partition)
        return [node for node, assigned in self._assignment.items() if assigned == partition]

    def items(self) -> Iterable[Tuple[int, int]]:
        """Iterate over ``(node, partition)`` pairs."""
        return self._assignment.items()

    def __len__(self) -> int:
        return len(self._assignment)

    def __contains__(self, node: int) -> bool:
        return node in self._assignment

    def _validate(self, partition: int) -> None:
        if partition != HOST_PARTITION and not 0 <= partition < self.num_partitions:
            raise ValueError(
                f"partition {partition} out of range "
                f"(0..{self.num_partitions - 1} or HOST_PARTITION)"
            )

    def copy(self) -> "PartitionMap":
        """Deep copy of the mapping."""
        clone = PartitionMap(self.num_partitions)
        for node, partition in self._assignment.items():
            clone.assign(node, partition)
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PartitionMap(partitions={self.num_partitions}, "
            f"assigned={len(self._assignment)}, host={self.host_size()})"
        )


class StreamingPartitioner(ABC):
    """Base class for partitioners that decide placements edge by edge."""

    def __init__(self, num_partitions: int) -> None:
        self.num_partitions = num_partitions
        self.partition_map = PartitionMap(num_partitions)

    @abstractmethod
    def assign_node(self, node: int, first_neighbor: Optional[int] = None) -> int:
        """Place a node seen for the first time; return its partition."""

    def ingest_edge(self, src: int, dst: int) -> Tuple[int, int]:
        """Observe the edge ``src -> dst``; place unseen endpoints.

        Returns the ``(src_partition, dst_partition)`` pair after
        placement.  The source is placed first (its first neighbor is the
        destination); the destination's first neighbor is the source —
        this mirrors the paper's Figure 1 where a new node's partition is
        derived from the first edge that mentions it.
        """
        if not self.partition_map.is_assigned(src):
            self.assign_node(src, first_neighbor=dst)
        if not self.partition_map.is_assigned(dst):
            self.assign_node(dst, first_neighbor=src)
        src_partition = self.partition_map.partition_of(src)
        dst_partition = self.partition_map.partition_of(dst)
        assert src_partition is not None and dst_partition is not None
        return src_partition, dst_partition

    def partition_of(self, node: int) -> Optional[int]:
        """Partition of ``node`` or ``None`` when unassigned."""
        return self.partition_map.partition_of(node)

    # ------------------------------------------------------------------
    # Degree-stream hooks (no-ops unless a policy tracks degrees)
    # ------------------------------------------------------------------
    def observed_out_degree(self, node: int) -> int:
        """Out-degree of ``node`` as seen by the ingest stream.

        Policies that do not track degrees report 0; the labor-division
        wrapper overrides this with its real counter.
        """
        return 0

    def observe_edges(
        self, src_counts: Iterable[Tuple[int, int]], dsts: Iterable[int]
    ) -> None:
        """Bulk degree bookkeeping for edges placed without ingestion.

        Default no-op; the labor-division wrapper overrides it.  Callers
        guarantee no source crosses a promotion threshold — this hook
        must never change placements.
        """


def partition_static_graph(
    partitioner: StreamingPartitioner, graph: DiGraph
) -> PartitionMap:
    """Replay ``graph`` through ``partitioner`` edge by edge.

    Isolated nodes (no edges at all) are placed at the end with
    ``first_neighbor=None`` so every node ends up assigned.
    """
    for src, dst in graph.edges():
        partitioner.ingest_edge(src, dst)
    for node in graph.nodes():
        if not partitioner.partition_map.is_assigned(node):
            partitioner.assign_node(node, first_neighbor=None)
    return partitioner.partition_map
