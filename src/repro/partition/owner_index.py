"""Vectorized owner lookups over the ``node_partition_vector``.

Both the vectorized execution engine and the vectorized update path need
to answer "which partition owns each of these nodes?" for whole arrays
at once.  :class:`OwnerIndex` freezes the
:class:`~repro.partition.base.PartitionMap` into one of two numpy
lookup structures and caches it against the map's version stamp, so
back-to-back batches between placement changes share the same arrays.

Reasonably dense node ids get a flat id-indexed vector (O(1) gathers);
sparse id spaces — where that vector would dwarf the assignment itself —
fall back to sorted ``(nodes, partitions)`` pairs probed by binary
search.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.partition.base import PartitionMap

_NO_ENTRIES = (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))


class OwnerIndex:
    """Version-cached, array-at-a-time view of a :class:`PartitionMap`."""

    #: Owner code of a node the partitioner has never seen (dangling edge).
    UNKNOWN = -2

    def __init__(self) -> None:
        self._dense: Optional[np.ndarray] = None
        self._nodes: Optional[np.ndarray] = None
        self._parts: Optional[np.ndarray] = None
        self._version = -1

    def refresh(self, partition_map: PartitionMap) -> None:
        """Bring the lookup structure up to date with the map.

        Callers refresh once per batch: node placement cannot change
        mid-batch (updates partition against the batch-start vector,
        queries cannot be interrupted by migrations).  When the map's
        change journal still covers the gap and the dense representation
        applies, only the changed entries are patched in; otherwise one
        pass over the partition map rebuilds the structure.
        """
        if self._version == partition_map.version:
            return
        if self._dense is not None:
            delta = partition_map.changes_since(self._version)
            if delta is not None and self._apply_delta(delta, partition_map):
                self._version = partition_map.version
                return
        self._rebuild(partition_map)

    def _apply_delta(
        self, delta: list, partition_map: PartitionMap
    ) -> bool:
        """Patch recent placement changes into the dense vector.

        Applied in journal order so re-placements resolve to the latest
        assignment.  Returns ``False`` (caller rebuilds) when a new node
        id would stretch the dense vector past the sparsity bound.
        """
        dense = self._dense
        highest = max((node for node, _ in delta), default=-1)
        if highest >= dense.size:
            if highest + 1 > 4 * len(partition_map) + 1024:
                return False
            grown = np.full(highest + 1, self.UNKNOWN, dtype=np.int64)
            grown[: dense.size] = dense
            dense = self._dense = grown
        for node, part in delta:
            dense[node] = part
        return True

    def _rebuild(self, partition_map: PartitionMap) -> None:
        count = len(partition_map)
        nodes = np.fromiter(
            (node for node, _ in partition_map.items()), dtype=np.int64, count=count
        )
        parts = np.fromiter(
            (part for _, part in partition_map.items()), dtype=np.int64, count=count
        )
        highest = int(nodes.max()) if count else -1
        if highest + 1 <= 4 * count + 1024:
            dense = np.full(highest + 1, self.UNKNOWN, dtype=np.int64)
            dense[nodes] = parts
            self._dense = dense
            self._nodes = None
            self._parts = None
        else:
            order = np.argsort(nodes)
            self._dense = None
            self._nodes = nodes[order]
            self._parts = parts[order]
        self._version = partition_map.version

    def owner_of(self, node: int) -> int:
        """Owner partition of one node (:data:`UNKNOWN` when unplaced)."""
        dense = self._dense
        if dense is not None:
            if 0 <= node < dense.size:
                return int(dense[node])
            return self.UNKNOWN
        owner_nodes = self._nodes
        if owner_nodes is None or owner_nodes.size == 0:
            return self.UNKNOWN
        position = int(np.searchsorted(owner_nodes, node))
        if position < owner_nodes.size and int(owner_nodes[position]) == node:
            return int(self._parts[position])
        return self.UNKNOWN

    @classmethod
    def from_arrays(
        cls,
        dense: Optional[np.ndarray] = None,
        nodes: Optional[np.ndarray] = None,
        parts: Optional[np.ndarray] = None,
    ) -> "OwnerIndex":
        """Rebuild an index directly from its lookup arrays.

        This is the attach half of shared-memory epoch export
        (:mod:`repro.parallel.shm`): a worker process reconstructs the
        frozen owner table zero-copy over arrays that live in a shared
        segment.  Exactly one representation may be supplied — ``dense``
        or the sorted ``(nodes, parts)`` pair — or neither for an empty
        table.  The arrays are used as handed in (callers freeze them).
        """
        if dense is not None and nodes is not None:
            raise ValueError("supply either dense or (nodes, parts), not both")
        if (nodes is None) != (parts is None):
            raise ValueError("nodes and parts must be supplied together")
        index = cls()
        if dense is not None:
            index._dense = dense
        elif nodes is not None:
            index._nodes = nodes
            index._parts = parts
        return index

    def export_arrays(self) -> Dict[str, np.ndarray]:
        """The index's lookup arrays, keyed by representation.

        Returns ``{"dense": ...}`` or ``{"nodes": ..., "parts": ...}``
        (empty dict for an empty table) — the serialization half of
        shared-memory epoch export, inverted by :meth:`from_arrays`.
        """
        if self._dense is not None:
            return {"dense": self._dense}
        if self._nodes is not None:
            return {"nodes": self._nodes, "parts": self._parts}
        return {}

    def frozen_copy(self) -> "OwnerIndex":
        """Point-in-time, read-only copy of the current lookup structure.

        Serving epochs capture the owner table with this: the live index
        keeps patching its arrays in place as the partition map journals
        new placements, so a pinned epoch needs its own immutable copy.
        """
        copy = OwnerIndex()
        copy._version = self._version
        if self._dense is not None:
            copy._dense = self._dense.copy()
            copy._dense.flags.writeable = False
        if self._nodes is not None:
            copy._nodes = self._nodes.copy()
            copy._nodes.flags.writeable = False
            copy._parts = self._parts.copy()
            copy._parts.flags.writeable = False
        return copy

    def table(self) -> Tuple[np.ndarray, np.ndarray]:
        """Canonical ``(nodes, partitions)`` view of every known entry.

        Nodes are sorted ascending, so two indexes hold the same owner
        table exactly when their ``table()`` arrays are equal — the
        normal form the durability suite compares recovered systems
        with (the acceptance criterion's "same OwnerIndex"), independent
        of whether each side happens to be dense or sparse.
        """
        dense = self._dense
        if dense is not None:
            nodes = np.flatnonzero(dense != self.UNKNOWN).astype(np.int64)
            return nodes, dense[nodes]
        if self._nodes is None:
            return _NO_ENTRIES
        return self._nodes, self._parts

    def owners_of(self, nodes: np.ndarray) -> np.ndarray:
        """Owner partition per node (:data:`UNKNOWN` when unplaced)."""
        dense = self._dense
        if dense is not None:
            if dense.size == 0:
                return np.full(len(nodes), self.UNKNOWN, dtype=np.int64)
            clipped = np.minimum(nodes, dense.size - 1)
            return np.where(nodes < dense.size, dense[clipped], self.UNKNOWN)
        owner_nodes = self._nodes
        if owner_nodes is None or owner_nodes.size == 0:
            return np.full(len(nodes), self.UNKNOWN, dtype=np.int64)
        positions = np.minimum(
            np.searchsorted(owner_nodes, nodes), owner_nodes.size - 1
        )
        return np.where(
            owner_nodes[positions] == nodes,
            self._parts[positions],
            self.UNKNOWN,
        )
