"""Graph partitioning algorithms and quality metrics.

The paper's central design contribution is a PIM-friendly dynamic graph
partitioning algorithm.  This package implements it alongside the
alternatives it is compared to and combined with:

* :class:`HashPartitioner` — the distributed-graph-database default and
  the placement used by the PIM-hash contrast system;
* :class:`LDGPartitioner` — Linear Deterministic Greedy, the
  representative of the greedy family;
* :class:`AdaptivePartitioner` — hash placement plus iterative
  neighbor-majority migration, the representative of the adaptive
  family;
* :class:`RadicalGreedyPartitioner` — the paper's first-neighbor
  heuristic with a dynamic 1.05x capacity constraint;
* :class:`LaborDivisionPartitioner` — wrapper routing high-degree nodes
  to the host partition, composable with any of the above for the
  low-degree remainder;
* :mod:`repro.partition.metrics` — edge cut, locality, balance.
"""

from repro.partition.base import (
    HOST_PARTITION,
    PartitionMap,
    StreamingPartitioner,
    partition_static_graph,
)
from repro.partition.hash_partition import HashPartitioner, stable_node_hash
from repro.partition.ldg import LDGPartitioner, ldg_partition_graph
from repro.partition.adaptive import AdaptivePartitioner, adaptive_partition_graph
from repro.partition.radical_greedy import (
    DEFAULT_CAPACITY_FACTOR,
    RadicalGreedyPartitioner,
)
from repro.partition.labor_division import (
    DEFAULT_HIGH_DEGREE_THRESHOLD,
    LaborDivisionPartitioner,
)
from repro.partition.owner_index import OwnerIndex
from repro.partition.metrics import (
    PartitionQuality,
    evaluate_partition,
    load_imbalance,
)

__all__ = [
    "HOST_PARTITION",
    "PartitionMap",
    "StreamingPartitioner",
    "partition_static_graph",
    "HashPartitioner",
    "stable_node_hash",
    "LDGPartitioner",
    "ldg_partition_graph",
    "AdaptivePartitioner",
    "adaptive_partition_graph",
    "RadicalGreedyPartitioner",
    "DEFAULT_CAPACITY_FACTOR",
    "LaborDivisionPartitioner",
    "DEFAULT_HIGH_DEGREE_THRESHOLD",
    "OwnerIndex",
    "PartitionQuality",
    "evaluate_partition",
    "load_imbalance",
]
