"""Linear Deterministic Greedy (LDG) streaming partitioning.

Stanton & Kliot (SIGKDD 2012).  LDG assigns an arriving node to the
partition that already contains most of its neighbors, damped by a
capacity penalty so partitions stay balanced:

``score(p) = |neighbors(v) on p| * (1 - size(p) / capacity)``

The paper uses LDG as the representative of the *greedy* family: it
preserves locality well but (a) every placement scans all P partitions,
which is expensive when P is in the tens or hundreds of PIM modules, and
(b) the capacity term needs the final number of nodes up front, which a
dynamic graph database does not know.  Moctopus's radical greedy
heuristic trades a little locality for O(1) placement; this
implementation exists as the comparison point for the partitioner
ablation benchmark.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from repro.graph.digraph import DiGraph
from repro.partition.base import PartitionMap, StreamingPartitioner


class LDGPartitioner(StreamingPartitioner):
    """Streaming LDG over arriving edges.

    Parameters
    ----------
    num_partitions:
        Number of PIM partitions.
    expected_nodes:
        The total node count LDG's capacity term assumes.  LDG needs this
        prior knowledge — exactly the limitation the paper points out.
    """

    def __init__(self, num_partitions: int, expected_nodes: int) -> None:
        super().__init__(num_partitions)
        if expected_nodes <= 0:
            raise ValueError("expected_nodes must be positive")
        self.expected_nodes = expected_nodes
        self._capacity = max(1.0, expected_nodes / num_partitions)
        #: Neighbors observed so far for each node (both directions),
        #: maintained incrementally from the edge stream.
        self._neighbors: Dict[int, Set[int]] = {}
        #: Number of partitions scanned across all placements — the
        #: partitioning-overhead metric the ablation reports.
        self.partitions_scanned = 0

    # ------------------------------------------------------------------
    def _observe_edge(self, src: int, dst: int) -> None:
        self._neighbors.setdefault(src, set()).add(dst)
        self._neighbors.setdefault(dst, set()).add(src)

    def ingest_edge(self, src: int, dst: int):
        """Record the edge before placement so scores see it."""
        self._observe_edge(src, dst)
        return super().ingest_edge(src, dst)

    def assign_node(self, node: int, first_neighbor: Optional[int] = None) -> int:
        """Place ``node`` on the partition with the best damped neighbor score."""
        neighbors = self._neighbors.get(node, set())
        if first_neighbor is not None:
            neighbors = neighbors | {first_neighbor}
        best_partition = 0
        best_score = float("-inf")
        for partition in range(self.num_partitions):
            self.partitions_scanned += 1
            size = self.partition_map.size(partition)
            neighbor_count = sum(
                1 for neighbor in neighbors
                if self.partition_map.partition_of(neighbor) == partition
            )
            score = neighbor_count * (1.0 - size / self._capacity)
            # Deterministic tie-break: emptier partition wins, then lower id.
            if score > best_score or (
                score == best_score
                and size < self.partition_map.size(best_partition)
            ):
                best_partition = partition
                best_score = score
        self.partition_map.assign(node, best_partition)
        return best_partition


def ldg_partition_graph(
    graph: DiGraph, num_partitions: int, node_order: Optional[Iterable[int]] = None
) -> PartitionMap:
    """Offline LDG: place nodes one by one with full neighborhood knowledge.

    This is the classic formulation (the streaming class above only knows
    edges seen so far).  Used by tests as a quality upper bound for the
    greedy family.
    """
    partitioner_map = PartitionMap(num_partitions)
    capacity = max(1.0, graph.num_nodes / num_partitions)
    undirected: Dict[int, Set[int]] = {node: set() for node in graph.nodes()}
    for src, dst in graph.edges():
        undirected[src].add(dst)
        undirected[dst].add(src)

    order: List[int] = list(node_order) if node_order is not None else list(graph.nodes())
    for node in order:
        best_partition = 0
        best_score = float("-inf")
        for partition in range(num_partitions):
            size = partitioner_map.size(partition)
            neighbor_count = sum(
                1 for neighbor in undirected[node]
                if partitioner_map.partition_of(neighbor) == partition
            )
            score = neighbor_count * (1.0 - size / capacity)
            if score > best_score or (
                score == best_score and size < partitioner_map.size(best_partition)
            ):
                best_partition = partition
                best_score = score
        partitioner_map.assign(node, best_partition)
    return partitioner_map
