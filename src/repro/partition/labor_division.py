"""Labor division: high-degree nodes to the host, low-degree nodes to PIM.

Section 3.2.1 of the paper.  Real graphs are skewed; a handful of hub
nodes have enormous next-hop lists.  Keeping hubs on PIM modules both
overloads whichever module owns them (load imbalance) and wastes the
host CPU, which is precisely good at streaming long contiguous arrays.
The labor-division approach therefore:

* classifies a node as *high-degree* when its out-degree exceeds a
  threshold (the paper and Table 1 use 16);
* places high-degree nodes on the host partition;
* promotes a node from a PIM module to the host the moment its degree
  crosses the threshold as the graph grows (performed by the node
  migrator in :mod:`repro.core.node_migrator`).

:class:`LaborDivisionPartitioner` wraps any PIM-side streaming
partitioner and adds the high-degree routing in front of it, so the
policy composes with hash, LDG or radical greedy placement for the
low-degree remainder.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from repro.partition.base import HOST_PARTITION, StreamingPartitioner

#: Out-degree above which a node is considered high-degree (paper: 16).
DEFAULT_HIGH_DEGREE_THRESHOLD = 16


class LaborDivisionPartitioner(StreamingPartitioner):
    """Route high-degree nodes to the host, delegate the rest."""

    def __init__(
        self,
        pim_partitioner: StreamingPartitioner,
        high_degree_threshold: int = DEFAULT_HIGH_DEGREE_THRESHOLD,
    ) -> None:
        super().__init__(pim_partitioner.num_partitions)
        if high_degree_threshold <= 0:
            raise ValueError("high_degree_threshold must be positive")
        self.high_degree_threshold = high_degree_threshold
        self._pim_partitioner = pim_partitioner
        # Share one map so callers see a single consistent view.
        self.partition_map = pim_partitioner.partition_map
        #: Out-degree observed so far per node (from the ingest stream).
        self._out_degree: Dict[int, int] = {}
        #: Nodes promoted to the host because their degree crossed the
        #: threshold after initial placement.
        self.promotions = 0

    # ------------------------------------------------------------------
    def observed_out_degree(self, node: int) -> int:
        """Out-degree of ``node`` as seen by this partitioner's edge stream."""
        return self._out_degree.get(node, 0)

    def is_high_degree(self, node: int) -> bool:
        """Whether ``node`` currently exceeds the high-degree threshold."""
        return self.observed_out_degree(node) > self.high_degree_threshold

    def assign_node(self, node: int, first_neighbor: Optional[int] = None) -> int:
        """Place a new node: host when already high-degree, PIM otherwise."""
        if self.is_high_degree(node):
            self.partition_map.assign(node, HOST_PARTITION)
            return HOST_PARTITION
        return self._pim_partitioner.assign_node(node, first_neighbor=first_neighbor)

    def ingest_edge(self, src: int, dst: int) -> Tuple[int, int]:
        """Observe an edge, place endpoints, and promote a hub if needed."""
        self._out_degree[src] = self._out_degree.get(src, 0) + 1
        self._out_degree.setdefault(dst, 0)
        src_partition, dst_partition = super().ingest_edge(src, dst)
        # The source may have just crossed the threshold: promote it.
        if src_partition != HOST_PARTITION and self.is_high_degree(src):
            self.partition_map.assign(src, HOST_PARTITION)
            self.promotions += 1
            src_partition = HOST_PARTITION
        return src_partition, dst_partition

    def observe_edges(
        self, src_counts: Iterable[Tuple[int, int]], dsts: Iterable[int]
    ) -> None:
        """Bulk degree bookkeeping for edges placed without ingestion.

        The vectorized update path pre-resolves placement for update
        batches whose endpoints are already assigned and whose sources
        cannot cross the high-degree threshold within the batch; this
        method applies the degree observations :meth:`ingest_edge` would
        have made for them (``+count`` per source, destination keys
        created at zero) in one pass.  Callers guarantee no source
        crosses the threshold — no promotion check is performed here.
        """
        degrees = self._out_degree
        for node, count in src_counts:
            degrees[node] = degrees.get(node, 0) + count
        for node in dsts:
            degrees.setdefault(node, 0)

    def pending_promotions(self) -> int:
        """Nodes still on PIM whose observed degree exceeds the threshold.

        Normally zero, because :meth:`ingest_edge` promotes eagerly; the
        accessor exists for tests and for engines that bypass the stream
        interface during bulk loads.
        """
        count = 0
        for node, degree in self._out_degree.items():
            partition = self.partition_map.partition_of(node)
            if partition is not None and partition != HOST_PARTITION:
                if degree > self.high_degree_threshold:
                    count += 1
        return count
