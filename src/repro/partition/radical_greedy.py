"""The paper's radical greedy heuristic with a dynamic capacity constraint.

Placement rule (Section 3.2.2):

1. When a node appears for the first time (as an endpoint of its first
   edge), assign it to the partition housing its **first neighbor** —
   no scan over all P partitions, O(1) state lookup in the
   ``node_partition_vector``.
2. If that target partition is over the **dynamic capacity constraint**
   (1.05x the average number of assigned nodes across PIM modules), the
   node is instead placed on an under-capacity partition chosen by a
   hash, which enforces load balance at the cost of a little locality.
3. Nodes the heuristic gets wrong (most of their next hops live
   elsewhere) are detected during path matching and migrated later by
   the node migrator — that adaptive half lives in
   :mod:`repro.core.node_migrator`; this module only implements the
   greedy half plus the bookkeeping both halves share.
"""

from __future__ import annotations

from typing import Optional

from repro.partition.base import StreamingPartitioner
from repro.partition.hash_partition import stable_node_hash

#: The paper's capacity-constraint proportion: 1.05x the average.
DEFAULT_CAPACITY_FACTOR = 1.05


class RadicalGreedyPartitioner(StreamingPartitioner):
    """First-neighbor placement with a dynamic capacity constraint.

    Parameters
    ----------
    num_partitions:
        Number of PIM partitions.
    capacity_factor:
        Multiple of the average partition size above which a partition
        stops accepting new nodes (the paper uses 1.05).  Lowering it
        tightens balance but hurts locality; the A2 ablation sweeps it.
    salt:
        Salt of the fallback hash used when the preferred partition is
        full.
    """

    def __init__(
        self,
        num_partitions: int,
        capacity_factor: float = DEFAULT_CAPACITY_FACTOR,
        min_capacity: int = 16,
        salt: int = 0x51ED270,
    ) -> None:
        super().__init__(num_partitions)
        if capacity_factor < 1.0:
            raise ValueError("capacity_factor must be >= 1.0")
        if min_capacity < 1:
            raise ValueError("min_capacity must be at least 1")
        self.capacity_factor = capacity_factor
        #: Absolute floor of the constraint.  While the graph is still tiny
        #: the relative constraint would forbid every co-location (1.05x of
        #: a near-zero average is below one node); a handful of nodes can
        #: never cause meaningful imbalance, so partitions may always grow
        #: to this floor.
        self.min_capacity = min_capacity
        self._salt = salt
        #: Placements that followed the first neighbor (locality wins).
        self.greedy_placements = 0
        #: Placements diverted by the capacity constraint or lack of a
        #: placed neighbor (hash fallback).
        self.fallback_placements = 0

    # ------------------------------------------------------------------
    def capacity_limit(self) -> float:
        """Current dynamic capacity: ``factor * average assigned nodes``.

        The constraint grows with the graph ("increasing with graph
        scale"), so early placements are never starved.
        """
        assigned_to_pim = sum(self.partition_map.pim_sizes())
        average = assigned_to_pim / self.num_partitions
        return max(self.capacity_factor * average, float(self.min_capacity))

    def _under_capacity(self, partition: int) -> bool:
        return self.partition_map.size(partition) + 1 <= self.capacity_limit()

    def _hash_fallback(self, node: int) -> int:
        """Pick an under-capacity partition by hashing, as the paper describes."""
        start = stable_node_hash(node, self._salt) % self.num_partitions
        for offset in range(self.num_partitions):
            candidate = (start + offset) % self.num_partitions
            if self._under_capacity(candidate):
                return candidate
        # Every partition is at the limit (can only happen transiently for
        # tiny graphs); fall back to the least loaded one.
        sizes = self.partition_map.pim_sizes()
        return min(range(self.num_partitions), key=lambda partition: sizes[partition])

    def assign_node(self, node: int, first_neighbor: Optional[int] = None) -> int:
        """Place ``node`` next to its first neighbor when capacity allows."""
        preferred: Optional[int] = None
        if first_neighbor is not None:
            neighbor_partition = self.partition_map.partition_of(first_neighbor)
            if neighbor_partition is not None and neighbor_partition >= 0:
                preferred = neighbor_partition

        if preferred is not None and self._under_capacity(preferred):
            self.partition_map.assign(node, preferred)
            self.greedy_placements += 1
            return preferred

        partition = self._hash_fallback(node)
        self.partition_map.assign(node, partition)
        self.fallback_placements += 1
        return partition

    # ------------------------------------------------------------------
    def migrate(self, node: int, target_partition: int) -> None:
        """Move an already-placed node (the adaptive half calls this)."""
        if not self.partition_map.is_assigned(node):
            raise KeyError(f"node {node} has not been assigned yet")
        self.partition_map.assign(node, target_partition)

    @property
    def placement_decisions(self) -> int:
        """Total number of nodes this partitioner has placed."""
        return self.greedy_placements + self.fallback_placements
