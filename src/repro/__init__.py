"""Moctopus reproduction: PIM-accelerated regular path queries over graph databases.

This package reproduces the system described in *"Accelerating Regular
Path Queries over Graph Database with Processing-in-Memory"* (DAC 2024).
It contains:

``repro.graph``
    The graph substrate: property graphs, adjacency structures, sparse
    boolean matrices with GraphBLAS-style semiring operations, synthetic
    dataset generators mirroring the paper's SNAP workloads, and update
    streams.

``repro.pim``
    A simulator of a commodity processing-in-memory platform (UPMEM-like):
    a host CPU with a cache/DRAM cost model, a set of PIM modules with
    small local memories, and CPU-PIM / inter-PIM communication channels
    with bandwidth accounting.

``repro.partition``
    Graph partitioning algorithms: hash, Linear Deterministic Greedy,
    adaptive repartitioning, and the paper's radical-greedy heuristic with
    a dynamic capacity constraint, plus partition quality metrics.

``repro.rpq``
    A regular path query engine: path-regex parsing, automaton
    construction, logical planning into matrix-based execution plans, and
    a reference evaluator used as a correctness oracle.

``repro.core``
    Moctopus itself: the query processor, graph partitioner and node
    migrator, PIM local graph storage, heterogeneous graph storage for
    high-degree nodes, and the top-level :class:`repro.core.Moctopus`
    facade.

``repro.engine``
    The physical execution layer: logical plans lower into
    dispatch/expand/route/reduce operator sequences executed by
    swappable backends — the scalar reference engine and a vectorized
    numpy engine over CSR storage snapshots — selected by
    ``MoctopusConfig.engine`` and required to agree on every result and
    every simulated counter.

``repro.serve``
    The snapshot-isolated concurrent serving layer: immutable epoch
    captures published by the single writer, pin-on-begin sessions with
    a read-your-writes overlay, and a bounded batch scheduler that
    coalesces concurrent client queries into engine-level batches.

``repro.net``
    The asyncio network front-end: a TCP server speaking a
    length-prefixed JSON frame protocol that feeds remote clients into
    the batch scheduler, with per-client and server-wide admission
    control, per-request timeouts, graceful draining shutdown, and a
    metrics surface (STATS frame + ``GET /metrics`` text scrape).

``repro.baselines``
    The two comparison systems from the paper's evaluation: a
    RedisGraph-like single-node GraphBLAS engine and the PIM-hash scheme.

``repro.bench``
    Workload generators, an experiment runner and report formatting used
    by the ``benchmarks/`` harness to regenerate every table and figure.
"""

from repro.graph import BooleanMatrix, DiGraph, PropertyGraph
from repro.pim import CostModel, PIMSystem
from repro.rpq import KHopQuery, RPQuery
from repro.core import Moctopus, MoctopusConfig
from repro.serve import BatchScheduler, Session
from repro.baselines import PIMHashSystem, RedisGraphEngine

__version__ = "1.0.0"

__all__ = [
    "DiGraph",
    "PropertyGraph",
    "BooleanMatrix",
    "Moctopus",
    "MoctopusConfig",
    "RedisGraphEngine",
    "PIMHashSystem",
    "CostModel",
    "PIMSystem",
    "RPQuery",
    "KHopQuery",
    "Session",
    "BatchScheduler",
    "__version__",
]
