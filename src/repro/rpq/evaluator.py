"""Reference RPQ evaluator (correctness oracle).

This evaluator computes query answers directly on the in-memory graph,
with no PIM simulation and no partitioning.  It exists so that every
engine in the reproduction — Moctopus, PIM-hash and the RedisGraph-like
baseline — can be checked against a single, independently implemented
source of truth:

* :func:`evaluate_khop` — breadth-first frontier expansion for the
  exact-k-hop semantics of the paper's workload;
* :func:`evaluate_rpq` — product-graph BFS over (graph node, automaton
  state) pairs, the textbook RPQ algorithm;
* :func:`count_khop_paths` — path counting over the counting semiring,
  used to study the result-explosion effect the paper reports for large
  ``k`` on non-road graphs.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Set, Tuple

from repro.graph.digraph import DiGraph
from repro.graph.matrix import SemiringMatrix
from repro.graph.semiring import COUNTING
from repro.rpq.automaton import DFA
from repro.rpq.query import BatchResult, KHopQuery, RPQuery


def evaluate_khop(graph: DiGraph, query: KHopQuery) -> BatchResult:
    """Exact-k-hop reachability from every source in the batch.

    Sources that do not exist in the graph yield empty destination sets
    (a query over a missing node matches nothing, it is not an error).
    """
    destinations: List[Set[int]] = []
    for source in query.sources:
        if not graph.has_node(source):
            destinations.append(set())
            continue
        frontier = {source}
        for _ in range(query.hops):
            next_frontier: Set[int] = set()
            for node in frontier:
                next_frontier.update(graph.successors(node))
            frontier = next_frontier
            if not frontier:
                break
        destinations.append(frontier)
    return BatchResult(sources=list(query.sources), destinations=destinations)


def evaluate_rpq(
    graph: DiGraph,
    query: RPQuery,
    label_names: Dict[int, str] = None,
) -> BatchResult:
    """Product-graph BFS evaluation of a general RPQ.

    Parameters
    ----------
    graph:
        The data graph; edge labels are integers.
    query:
        The path query.
    label_names:
        Mapping from integer edge label to the label string used in the
        query expression.  When omitted, integer labels are matched by
        their decimal string and the unlabeled default (0) only matches
        wildcard steps.
    """
    dfa = query.dfa()
    destinations: List[Set[int]] = []
    for source in query.sources:
        destinations.append(_single_source_rpq(graph, dfa, source, label_names))
    return BatchResult(sources=list(query.sources), destinations=destinations)


def _label_string(label: int, label_names: Dict[int, str] = None) -> str:
    if label_names and label in label_names:
        return label_names[label]
    return str(label)


def _single_source_rpq(
    graph: DiGraph,
    dfa: DFA,
    source: int,
    label_names: Dict[int, str] = None,
) -> Set[int]:
    if not graph.has_node(source):
        return set()
    start_state = dfa.start
    visited: Set[Tuple[int, int]] = {(source, start_state)}
    queue = deque([(source, start_state)])
    matched: Set[int] = set()
    if dfa.is_accepting(start_state):
        # Zero-length match: the expression accepts the empty path, so the
        # source itself is a destination (e.g. ``a*``).
        matched.add(source)
    while queue:
        node, state = queue.popleft()
        for successor, label in graph.successors_with_labels(node):
            next_state = dfa.step(state, _label_string(label, label_names))
            if next_state is None:
                continue
            pair = (successor, next_state)
            if pair in visited:
                continue
            visited.add(pair)
            if dfa.is_accepting(next_state):
                matched.add(successor)
            queue.append(pair)
    return matched


def count_khop_paths(graph: DiGraph, sources: List[int], hops: int) -> int:
    """Total number of distinct k-edge paths starting from ``sources``.

    Computed over the counting semiring (``Q x Adj^k`` with plus/times),
    so parallel paths to the same destination are counted separately —
    this is the quantity that explodes with ``k`` on skewed graphs and
    shifts Moctopus's bottleneck to CPC and reduction (Section 4.2).
    """
    if hops < 0:
        raise ValueError("hops must be non-negative")
    adjacency = SemiringMatrix.from_graph(graph, semiring=COUNTING)
    frontier = SemiringMatrix(semiring=COUNTING)
    for row, source in enumerate(sources):
        frontier.set(row, source, 1)
    for _ in range(hops):
        frontier = frontier.mxm(adjacency)
    total = frontier.total()
    return int(total)
