"""Query objects: regular path queries and the k-hop special case.

The paper's evaluation focuses on a typical RPQ — the *k-hop path query
with a fixed start node*, processed in batches — while the system is
described for RPQs in general.  Two query classes mirror that split:

* :class:`RPQuery` — an arbitrary path expression plus a batch of source
  nodes; evaluated via the automaton machinery.
* :class:`KHopQuery` — the ``.{k}`` special case; engines recognise it
  and run the pure matrix plan ``ans = Q x Adj x ... x Adj``.

A query result is a :class:`BatchResult`: per query (row) the set of
destination nodes whose path from the query's source matches the
expression, matching the ``ans`` matrix of the paper's Figure 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro.rpq.automaton import DFA, build_dfa
from repro.rpq.regex import RegexNode, khop_expression, parse_path_expression

#: One in-flight query context carried by a frontier item: the batch row
#: for pure k-hop plans, or a ``(row, automaton_state)`` pair for general
#: RPQs.  Every layer of the query path — the query processor, the
#: per-module operator processor and the execution engines — shares this
#: type instead of an untyped ``object``.
Context = Union[int, Tuple[int, int]]

#: The set of contexts sitting on one graph node of a frontier.
ContextSet = Set[Context]


@dataclass
class BatchResult:
    """Result of a batch of single-source path queries.

    ``destinations[i]`` is the destination set of the ``i``-th query in
    the batch (the ``i``-th row of the ``ans`` matrix).
    """

    sources: List[int]
    destinations: List[Set[int]]

    def pairs(self) -> Set[Tuple[int, int]]:
        """All matched ``(source, destination)`` endpoint pairs."""
        matched: Set[Tuple[int, int]] = set()
        for source, destination_set in zip(self.sources, self.destinations):
            for destination in destination_set:
                matched.add((source, destination))
        return matched

    def destinations_of(self, index: int) -> Set[int]:
        """Destination set of the ``index``-th query in the batch."""
        return self.destinations[index]

    @property
    def total_matches(self) -> int:
        """Total number of matched endpoint pairs across the batch."""
        return sum(len(destination_set) for destination_set in self.destinations)

    def as_dict(self) -> Dict[int, Set[int]]:
        """Mapping from source to the union of its destinations.

        When the same source appears several times in the batch its
        destination sets are merged.
        """
        merged: Dict[int, Set[int]] = {}
        for source, destination_set in zip(self.sources, self.destinations):
            merged.setdefault(source, set()).update(destination_set)
        return merged

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BatchResult):
            return NotImplemented
        return (
            self.sources == other.sources
            and self.destinations == other.destinations
        )


@dataclass
class RPQuery:
    """A regular path query over edge labels with a batch of sources.

    Parameters
    ----------
    expression:
        Path expression string (see :mod:`repro.rpq.regex` for the
        dialect) — e.g. ``"knows+"`` or ``"(cites/cites)|cites"``.
    sources:
        Source node per query in the batch.
    """

    expression: str
    sources: List[int] = field(default_factory=list)
    #: Memoized ``(expression, ast)`` / ``(expression, dfa)`` pairs:
    #: parsing and determinization are pure in the expression string, and
    #: the planner and plan-cache key call both repeatedly per query.
    #: Keying the cache by the expression keeps mutation safe — reusing a
    #: query object with a new expression recomputes.
    _ast_cache: Optional[Tuple[str, RegexNode]] = field(
        init=False, default=None, repr=False, compare=False
    )
    _dfa_cache: Optional[Tuple[str, DFA]] = field(
        init=False, default=None, repr=False, compare=False
    )

    def ast(self) -> RegexNode:
        """Parsed AST of the expression (memoized)."""
        cached = self._ast_cache
        if cached is None or cached[0] != self.expression:
            cached = (self.expression, parse_path_expression(self.expression))
            self._ast_cache = cached
        return cached[1]

    def dfa(self) -> DFA:
        """Deterministic automaton of the expression (memoized)."""
        cached = self._dfa_cache
        if cached is None or cached[0] != self.expression:
            cached = (self.expression, build_dfa(self.expression))
            self._dfa_cache = cached
        return cached[1]

    def is_fixed_length(self) -> bool:
        """Whether every matched path has the same number of edges."""
        return self.ast().is_fixed_length()

    def fixed_length(self) -> int:
        """The common path length; raises ``ValueError`` when variable."""
        length = self.ast().fixed_length()
        if length is None:
            raise ValueError(
                f"path expression {self.expression!r} matches variable-length paths"
            )
        return length

    @property
    def batch_size(self) -> int:
        """Number of queries in the batch."""
        return len(self.sources)


@dataclass
class KHopQuery:
    """Batch k-hop path query with fixed start nodes (the paper's workload).

    Semantics: for each source, return the nodes reachable by a path of
    **exactly** ``hops`` edges (any labels).  This matches the matrix
    plan ``ans = Q x Adj^k`` of the paper's Figure 2.
    """

    hops: int
    sources: List[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.hops < 1:
            raise ValueError("hops must be at least 1")

    @property
    def batch_size(self) -> int:
        """Number of queries in the batch."""
        return len(self.sources)

    def expression(self) -> str:
        """Equivalent path expression (``.{k}``)."""
        return khop_expression(self.hops)

    def to_rpq(self) -> RPQuery:
        """The equivalent general :class:`RPQuery`."""
        return RPQuery(expression=self.expression(), sources=list(self.sources))


def make_batch_khop(
    sources: Iterable[int], hops: int
) -> KHopQuery:
    """Convenience constructor for a batch k-hop query."""
    return KHopQuery(hops=hops, sources=list(sources))


def random_source_batch(
    node_ids: Sequence[int], batch_size: int, seed: int = 0
) -> List[int]:
    """Sample ``batch_size`` start nodes (with replacement) for a batch query.

    The paper's workload selects start nodes randomly and issues them in
    one batch (batch size 64 K); sampling with replacement keeps that
    behaviour valid even when the scaled-down graph has fewer nodes than
    the batch size.
    """
    import random

    rng = random.Random(seed)
    if not node_ids:
        raise ValueError("cannot sample sources from an empty node set")
    return [node_ids[rng.randrange(len(node_ids))] for _ in range(batch_size)]
