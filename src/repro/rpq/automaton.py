"""Finite automata over edge labels.

A regular path query is evaluated by simulating a finite automaton over
the edge labels of graph paths.  This module builds a Thompson NFA from
the parsed path expression and optionally determinises it (subset
construction).  Transitions are labeled either with a concrete label
string or with the wildcard :data:`~repro.rpq.regex.ANY_LABEL`.

The automata here are deliberately small and dictionary-based — query
expressions are tiny compared to graphs, so clarity beats compactness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.rpq.regex import (
    ANY_LABEL,
    Concat,
    Label,
    RegexNode,
    Repeat,
    Union,
    parse_path_expression,
)

#: Epsilon (empty) transition marker.
EPSILON = ""


@dataclass
class NFA:
    """A nondeterministic finite automaton with epsilon transitions."""

    start: int
    accept: int
    #: ``transitions[state][symbol] -> set of next states``; the symbol is
    #: a label string, :data:`ANY_LABEL`, or :data:`EPSILON`.
    transitions: Dict[int, Dict[str, Set[int]]] = field(default_factory=dict)

    @property
    def num_states(self) -> int:
        """Number of states mentioned by the transition table."""
        states = {self.start, self.accept}
        for state, arcs in self.transitions.items():
            states.add(state)
            for targets in arcs.values():
                states.update(targets)
        return len(states)

    def add_transition(self, src: int, symbol: str, dst: int) -> None:
        """Add ``src --symbol--> dst``."""
        self.transitions.setdefault(src, {}).setdefault(symbol, set()).add(dst)

    def epsilon_closure(self, states: Set[int]) -> Set[int]:
        """All states reachable from ``states`` via epsilon transitions."""
        closure = set(states)
        stack = list(states)
        while stack:
            state = stack.pop()
            for target in self.transitions.get(state, {}).get(EPSILON, ()):  # pragma: no branch
                if target not in closure:
                    closure.add(target)
                    stack.append(target)
        return closure

    def step(self, states: Set[int], label: str) -> Set[int]:
        """States reachable by consuming one edge with ``label``."""
        next_states: Set[int] = set()
        for state in states:
            arcs = self.transitions.get(state, {})
            next_states.update(arcs.get(label, ()))
            if label != EPSILON:
                next_states.update(arcs.get(ANY_LABEL, ()))
        return self.epsilon_closure(next_states)

    def initial_states(self) -> Set[int]:
        """Epsilon closure of the start state."""
        return self.epsilon_closure({self.start})

    def is_accepting(self, states: Set[int]) -> bool:
        """Whether any of ``states`` is the accept state."""
        return self.accept in states

    def alphabet(self) -> Set[str]:
        """Concrete labels mentioned by the automaton (wildcard excluded)."""
        labels: Set[str] = set()
        for arcs in self.transitions.values():
            for symbol in arcs:
                if symbol not in (EPSILON, ANY_LABEL):
                    labels.add(symbol)
        return labels

    def matches(self, labels: List[str]) -> bool:
        """Whether the label sequence ``labels`` is accepted (testing aid)."""
        states = self.initial_states()
        for label in labels:
            states = self.step(states, label)
            if not states:
                return False
        return self.is_accepting(states)


class _NFABuilder:
    """Thompson construction with a monotonically increasing state counter."""

    def __init__(self) -> None:
        self._next_state = 0
        self.transitions: Dict[int, Dict[str, Set[int]]] = {}

    def new_state(self) -> int:
        state = self._next_state
        self._next_state += 1
        return state

    def add(self, src: int, symbol: str, dst: int) -> None:
        self.transitions.setdefault(src, {}).setdefault(symbol, set()).add(dst)

    # Each build method returns a (start, accept) fragment.
    def build(self, node: RegexNode) -> Tuple[int, int]:
        if isinstance(node, Label):
            start, accept = self.new_state(), self.new_state()
            symbol = ANY_LABEL if node.is_wildcard else node.name
            self.add(start, symbol, accept)
            return start, accept
        if isinstance(node, Concat):
            start, accept = None, None
            for part in node.parts:
                part_start, part_accept = self.build(part)
                if start is None:
                    start = part_start
                else:
                    self.add(accept, EPSILON, part_start)
                accept = part_accept
            assert start is not None and accept is not None
            return start, accept
        if isinstance(node, Union):
            start, accept = self.new_state(), self.new_state()
            for option in node.options:
                option_start, option_accept = self.build(option)
                self.add(start, EPSILON, option_start)
                self.add(option_accept, EPSILON, accept)
            return start, accept
        if isinstance(node, Repeat):
            return self._build_repeat(node)
        raise TypeError(f"unknown regex node {node!r}")

    def _build_repeat(self, node: Repeat) -> Tuple[int, int]:
        start, accept = self.new_state(), self.new_state()
        previous = start
        # Mandatory copies.
        for _ in range(node.minimum):
            fragment_start, fragment_accept = self.build(node.inner)
            self.add(previous, EPSILON, fragment_start)
            previous = fragment_accept
        if node.maximum is None:
            # Unbounded tail: one more copy looping on itself.
            loop_start, loop_accept = self.build(node.inner)
            self.add(previous, EPSILON, accept)
            self.add(previous, EPSILON, loop_start)
            self.add(loop_accept, EPSILON, loop_start)
            self.add(loop_accept, EPSILON, accept)
        else:
            # Optional copies up to the maximum.
            for _ in range(node.maximum - node.minimum):
                fragment_start, fragment_accept = self.build(node.inner)
                self.add(previous, EPSILON, accept)
                self.add(previous, EPSILON, fragment_start)
                previous = fragment_accept
            self.add(previous, EPSILON, accept)
        return start, accept


def build_nfa(expression) -> NFA:
    """Build a Thompson NFA from a path expression (string or AST)."""
    node = (
        parse_path_expression(expression)
        if isinstance(expression, str)
        else expression
    )
    builder = _NFABuilder()
    start, accept = builder.build(node)
    return NFA(start=start, accept=accept, transitions=builder.transitions)


@dataclass
class DFA:
    """A deterministic automaton produced by subset construction.

    The DFA keeps wildcard transitions explicit: each state has a
    ``default`` target used when the consumed label has no dedicated arc.
    """

    start: int
    accepting: Set[int]
    #: ``transitions[state][label] -> state`` for concrete labels.
    transitions: Dict[int, Dict[str, int]] = field(default_factory=dict)
    #: ``default[state] -> state`` for labels without a dedicated arc.
    default: Dict[int, int] = field(default_factory=dict)

    @property
    def num_states(self) -> int:
        """Number of DFA states."""
        states = {self.start} | set(self.accepting)
        states.update(self.transitions)
        states.update(self.default)
        for arcs in self.transitions.values():
            states.update(arcs.values())
        states.update(self.default.values())
        return len(states)

    def step(self, state: int, label: str) -> Optional[int]:
        """Next state after consuming ``label`` (``None`` = reject)."""
        arcs = self.transitions.get(state, {})
        if label in arcs:
            return arcs[label]
        return self.default.get(state)

    def is_accepting(self, state: int) -> bool:
        """Whether ``state`` accepts."""
        return state in self.accepting

    def matches(self, labels: List[str]) -> bool:
        """Whether the label sequence is accepted (testing aid)."""
        state: Optional[int] = self.start
        for label in labels:
            state = self.step(state, label)
            if state is None:
                return False
        return state in self.accepting


def determinize(nfa: NFA) -> DFA:
    """Subset construction with explicit wildcard handling."""
    alphabet = sorted(nfa.alphabet())
    initial = frozenset(nfa.initial_states())
    state_ids: Dict[FrozenSet[int], int] = {initial: 0}
    worklist: List[FrozenSet[int]] = [initial]
    dfa = DFA(start=0, accepting=set())
    if nfa.is_accepting(set(initial)):
        dfa.accepting.add(0)

    def intern(subset: FrozenSet[int]) -> int:
        if subset not in state_ids:
            state_ids[subset] = len(state_ids)
            worklist.append(subset)
            if nfa.is_accepting(set(subset)):
                dfa.accepting.add(state_ids[subset])
        return state_ids[subset]

    while worklist:
        subset = worklist.pop()
        subset_id = state_ids[subset]
        # Wildcard-only step: what happens on a label not in the alphabet.
        default_target = frozenset(nfa.step(set(subset), "\uFFFFunseen-label"))
        if default_target:
            dfa.default[subset_id] = intern(default_target)
        for label in alphabet:
            target = frozenset(nfa.step(set(subset), label))
            if target:
                dfa.transitions.setdefault(subset_id, {})[label] = intern(target)
    return dfa


def minimize_dfa(dfa: DFA) -> DFA:
    """Moore partition refinement with an implicit dead (reject) state.

    Subset construction routinely emits distinguishable-looking but
    equivalent states (e.g. ``a/c|b/c`` yields separate "after a" and
    "after b" states).  The product-graph frontier carries one item per
    ``(node, state)`` pair, so merging equivalent states shrinks every
    downstream frontier and the DFA-aware fixpoint bound.

    The reject case (``step`` returning ``None``) is modeled as a
    constant dead block that never splits; it is never materialised in
    the output.  Block numbering is deterministic: the start state's
    block is 0, the rest follow in order of their smallest original
    state id, so minimizing the same DFA always yields the same object.
    """
    # Restrict to states reachable from the start; unreachable states
    # must not influence the partition (and would survive as garbage).
    reachable: Set[int] = {dfa.start}
    stack = [dfa.start]
    while stack:
        state = stack.pop()
        targets = list(dfa.transitions.get(state, {}).values())
        if state in dfa.default:
            targets.append(dfa.default[state])
        for target in targets:
            if target not in reachable:
                reachable.add(target)
                stack.append(target)
    states = sorted(reachable)
    alphabet = sorted({
        label
        for state in states
        for label in dfa.transitions.get(state, {})
    })

    DEAD = -1  # signature marker for the implicit reject state
    block: Dict[int, int] = {
        state: (1 if state in dfa.accepting else 0) for state in states
    }
    while True:
        signatures: Dict[int, Tuple[int, ...]] = {}
        for state in states:
            default_target = dfa.default.get(state)
            signature = [
                block[state],
                block[default_target] if default_target is not None else DEAD,
            ]
            for label in alphabet:
                target = dfa.step(state, label)
                signature.append(block[target] if target is not None else DEAD)
            signatures[state] = tuple(signature)
        renumber: Dict[Tuple[int, ...], int] = {}
        refined = {}
        for state in states:
            refined[state] = renumber.setdefault(
                signatures[state], len(renumber)
            )
        if len(renumber) == len(set(block.values())):
            break
        block = refined

    # Deterministic block ids: start first, then by smallest member.
    members: Dict[int, List[int]] = {}
    for state in states:
        members.setdefault(block[state], []).append(state)
    ordered = sorted(
        members.values(),
        key=lambda group: (dfa.start not in group, min(group)),
    )
    new_id = {block[group[0]]: index for index, group in enumerate(ordered)}

    minimized = DFA(start=new_id[block[dfa.start]], accepting=set())
    for group in ordered:
        representative = min(group)
        group_id = new_id[block[representative]]
        if representative in dfa.accepting:
            minimized.accepting.add(group_id)
        default_target = dfa.default.get(representative)
        default_block = None
        if default_target is not None:
            default_block = block[default_target]
            minimized.default[group_id] = new_id[default_block]
        for label in alphabet:
            target = dfa.step(representative, label)
            if target is None:
                continue
            if default_block is not None and block[target] == default_block:
                continue  # the default arc already covers this label
            minimized.transitions.setdefault(group_id, {})[label] = (
                new_id[block[target]]
            )
    return minimized


def build_dfa(expression) -> DFA:
    """Parse, build the NFA, determinise and minimize in one call."""
    return minimize_dfa(determinize(build_nfa(expression)))
