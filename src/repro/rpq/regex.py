"""Path regular expression parser.

A regular path query constrains the sequence of edge labels along a
path with a regular expression.  The dialect implemented here covers
what graph query languages (SPARQL property paths, Cypher/GQL path
patterns) and the paper's workloads need:

* ``a`` — match one edge with label ``a``;
* ``.`` or ``_`` — match one edge with any label (the paper's k-hop
  queries are ``. {k}`` in this dialect);
* ``e1/e2`` — concatenation (``/`` is the SPARQL-style separator;
  juxtaposition with whitespace also works);
* ``e1|e2`` — alternation;
* ``e*``, ``e+``, ``e?`` — Kleene closure, one-or-more, optional;
* ``e{m}``, ``e{m,n}`` — bounded repetition;
* parentheses for grouping.

The parser is a hand-written recursive-descent parser producing a small
AST (:class:`RegexNode` subclasses) that the automaton builder and the
logical planner consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

#: Wildcard token matching any edge label.
ANY_LABEL = "."


class RegexSyntaxError(ValueError):
    """Raised when a path expression cannot be parsed."""


# ----------------------------------------------------------------------
# AST
# ----------------------------------------------------------------------
class RegexNode:
    """Base class of path-regex AST nodes."""

    def is_fixed_length(self) -> bool:
        """Whether every string matched by this node has the same length."""
        raise NotImplementedError

    def fixed_length(self) -> Optional[int]:
        """The common length when :meth:`is_fixed_length`, else ``None``."""
        raise NotImplementedError


@dataclass(frozen=True)
class Label(RegexNode):
    """Match a single edge carrying ``name`` (or any edge for ``.``)."""

    name: str

    @property
    def is_wildcard(self) -> bool:
        """Whether this atom matches any label."""
        return self.name == ANY_LABEL

    def is_fixed_length(self) -> bool:
        return True

    def fixed_length(self) -> Optional[int]:
        return 1


@dataclass(frozen=True)
class Concat(RegexNode):
    """Match ``parts`` one after another."""

    parts: Tuple[RegexNode, ...]

    def is_fixed_length(self) -> bool:
        return all(part.is_fixed_length() for part in self.parts)

    def fixed_length(self) -> Optional[int]:
        if not self.is_fixed_length():
            return None
        return sum(part.fixed_length() or 0 for part in self.parts)


@dataclass(frozen=True)
class Union(RegexNode):
    """Match either of ``options``."""

    options: Tuple[RegexNode, ...]

    def is_fixed_length(self) -> bool:
        lengths = {option.fixed_length() for option in self.options
                   if option.is_fixed_length()}
        return (
            len(lengths) == 1
            and all(option.is_fixed_length() for option in self.options)
        )

    def fixed_length(self) -> Optional[int]:
        if not self.is_fixed_length():
            return None
        return self.options[0].fixed_length()


@dataclass(frozen=True)
class Repeat(RegexNode):
    """Match ``inner`` between ``minimum`` and ``maximum`` times.

    ``maximum`` of ``None`` means unbounded (Kleene closure).
    """

    inner: RegexNode
    minimum: int
    maximum: Optional[int]

    def is_fixed_length(self) -> bool:
        return (
            self.maximum is not None
            and self.minimum == self.maximum
            and self.inner.is_fixed_length()
        )

    def fixed_length(self) -> Optional[int]:
        if not self.is_fixed_length():
            return None
        inner_length = self.inner.fixed_length() or 0
        return inner_length * self.minimum


# ----------------------------------------------------------------------
# Tokenizer
# ----------------------------------------------------------------------
_PUNCTUATION = set("()|/*+?{},")


def _tokenize(expression: str) -> List[str]:
    tokens: List[str] = []
    index = 0
    while index < len(expression):
        char = expression[index]
        if char.isspace():
            index += 1
            continue
        if char in _PUNCTUATION:
            tokens.append(char)
            index += 1
            continue
        if char == ".":
            tokens.append(ANY_LABEL)
            index += 1
            continue
        if char == "_":
            # A *bare* underscore is the SPARQL-style wildcard; an
            # underscore followed by an identifier character starts a
            # label (``_foo`` names a label, it is not ``./foo``).  The
            # start set must mirror the continuation set below or
            # leading-underscore labels silently change meaning.
            next_char = expression[index + 1] if index + 1 < len(expression) else ""
            if not (next_char.isalnum() or next_char in set("-_:$")):
                tokens.append(ANY_LABEL)
                index += 1
                continue
        if char.isalnum() or char in "-_:$":
            start = index
            while index < len(expression) and (
                expression[index].isalnum() or expression[index] in "-_:$"
            ):
                index += 1
            tokens.append(expression[start:index])
            continue
        raise RegexSyntaxError(
            f"unexpected character {char!r} at position {index} in {expression!r}"
        )
    return tokens


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------
class _Parser:
    def __init__(self, tokens: List[str], source: str) -> None:
        self._tokens = tokens
        self._source = source
        self._position = 0

    def _peek(self) -> Optional[str]:
        if self._position < len(self._tokens):
            return self._tokens[self._position]
        return None

    def _advance(self) -> str:
        token = self._tokens[self._position]
        self._position += 1
        return token

    def _expect(self, token: str) -> None:
        actual = self._peek()
        if actual != token:
            raise RegexSyntaxError(
                f"expected {token!r} but found {actual!r} in {self._source!r}"
            )
        self._advance()

    # union := concat ('|' concat)*
    def parse_union(self) -> RegexNode:
        options = [self.parse_concat()]
        while self._peek() == "|":
            self._advance()
            options.append(self.parse_concat())
        if len(options) == 1:
            return options[0]
        return Union(tuple(options))

    # concat := postfix (('/' postfix) | postfix)*
    def parse_concat(self) -> RegexNode:
        parts = [self.parse_postfix()]
        while True:
            token = self._peek()
            if token == "/":
                self._advance()
                parts.append(self.parse_postfix())
            elif token is not None and token not in ")|":
                parts.append(self.parse_postfix())
            else:
                break
        if len(parts) == 1:
            return parts[0]
        return Concat(tuple(parts))

    # postfix := atom ('*' | '+' | '?' | '{m}' | '{m,n}')*
    def parse_postfix(self) -> RegexNode:
        node = self.parse_atom()
        while True:
            token = self._peek()
            if token == "*":
                self._advance()
                node = Repeat(node, minimum=0, maximum=None)
            elif token == "+":
                self._advance()
                node = Repeat(node, minimum=1, maximum=None)
            elif token == "?":
                self._advance()
                node = Repeat(node, minimum=0, maximum=1)
            elif token == "{":
                node = self._parse_bounds(node)
            else:
                return node

    def _parse_bounds(self, node: RegexNode) -> RegexNode:
        self._expect("{")
        minimum = self._parse_int()
        maximum: Optional[int] = minimum
        if self._peek() == ",":
            self._advance()
            if self._peek() == "}":
                maximum = None
            else:
                maximum = self._parse_int()
        self._expect("}")
        if maximum is not None and maximum < minimum:
            raise RegexSyntaxError(
                f"invalid repetition bounds {{{minimum},{maximum}}} in {self._source!r}"
            )
        return Repeat(node, minimum=minimum, maximum=maximum)

    def _parse_int(self) -> int:
        token = self._peek()
        if token is None or not token.isdigit():
            raise RegexSyntaxError(
                f"expected an integer but found {token!r} in {self._source!r}"
            )
        self._advance()
        return int(token)

    # atom := LABEL | '.' | '(' union ')'
    def parse_atom(self) -> RegexNode:
        token = self._peek()
        if token is None:
            raise RegexSyntaxError(f"unexpected end of expression in {self._source!r}")
        if token == "(":
            self._advance()
            node = self.parse_union()
            self._expect(")")
            return node
        if token in _PUNCTUATION:
            raise RegexSyntaxError(
                f"unexpected token {token!r} in {self._source!r}"
            )
        self._advance()
        return Label(token)

    def finished(self) -> bool:
        return self._position == len(self._tokens)


def parse_path_expression(expression: str) -> RegexNode:
    """Parse ``expression`` into a path-regex AST.

    Raises
    ------
    RegexSyntaxError
        On empty input or malformed syntax.
    """
    tokens = _tokenize(expression)
    if not tokens:
        raise RegexSyntaxError("empty path expression")
    parser = _Parser(tokens, expression)
    node = parser.parse_union()
    if not parser.finished():
        raise RegexSyntaxError(
            f"trailing tokens after position {parser._position} in {expression!r}"
        )
    return node


def reverse_expression(node: RegexNode) -> RegexNode:
    """The AST matching exactly the reversed label sequences of ``node``.

    ``L(reverse(e)) == {reversed(w) for w in L(e)}``: concatenations flip
    their part order (and reverse each part), unions and repetitions
    distribute over reversal, and single labels are their own reverse.
    The cost-based planner uses this to build the automaton for
    reverse-direction (destination-to-source) expansion.
    """
    if isinstance(node, Label):
        return node
    if isinstance(node, Concat):
        return Concat(tuple(
            reverse_expression(part) for part in reversed(node.parts)
        ))
    if isinstance(node, Union):
        return Union(tuple(
            reverse_expression(option) for option in node.options
        ))
    if isinstance(node, Repeat):
        return Repeat(
            reverse_expression(node.inner), node.minimum, node.maximum
        )
    raise TypeError(f"unknown regex node {node!r}")


def khop_expression(hops: int) -> str:
    """The path expression of a k-hop query: ``.{k}`` (any label, k edges)."""
    if hops < 1:
        raise ValueError("hops must be at least 1")
    return f".{{{hops}}}"
