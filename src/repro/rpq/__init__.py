"""Regular path query engine.

A regular path query (RPQ) asks for all endpoint pairs connected by a
path whose edge-label sequence matches a regular expression.  This
package provides:

* the path-expression parser (:mod:`repro.rpq.regex`),
* Thompson NFA / subset-construction DFA builders
  (:mod:`repro.rpq.automaton`),
* query objects — :class:`RPQuery` and the paper's :class:`KHopQuery`
  workload (:mod:`repro.rpq.query`),
* the logical planner that lowers queries into matrix-based execution
  plans (:mod:`repro.rpq.planner`),
* the cost-based planner that chooses expansion direction, bounds and
  backend from frozen epoch statistics (:mod:`repro.rpq.cost_planner`),
* a reference evaluator used as the correctness oracle for every engine
  (:mod:`repro.rpq.evaluator`).
"""

from repro.rpq.regex import (
    ANY_LABEL,
    Concat,
    Label,
    RegexNode,
    RegexSyntaxError,
    Repeat,
    Union,
    khop_expression,
    parse_path_expression,
    reverse_expression,
)
from repro.rpq.automaton import (
    DFA,
    EPSILON,
    NFA,
    build_dfa,
    build_nfa,
    determinize,
    minimize_dfa,
)
from repro.rpq.cost_planner import (
    CostBasedPlanner,
    GraphCostStats,
    PlanDecision,
    accepting_edge_labels,
    epoch_of_view,
)
from repro.rpq.query import (
    BatchResult,
    Context,
    ContextSet,
    KHopQuery,
    RPQuery,
    make_batch_khop,
    random_source_batch,
)
from repro.rpq.planner import (
    ExpandStep,
    FixpointStep,
    LogicalPlan,
    ReduceStep,
    plan_khop,
    plan_query,
    plan_rpq,
)
from repro.rpq.evaluator import count_khop_paths, evaluate_khop, evaluate_rpq

__all__ = [
    "ANY_LABEL",
    "RegexNode",
    "Label",
    "Concat",
    "Union",
    "Repeat",
    "RegexSyntaxError",
    "parse_path_expression",
    "khop_expression",
    "reverse_expression",
    "NFA",
    "DFA",
    "EPSILON",
    "build_nfa",
    "build_dfa",
    "determinize",
    "minimize_dfa",
    "CostBasedPlanner",
    "GraphCostStats",
    "PlanDecision",
    "accepting_edge_labels",
    "epoch_of_view",
    "RPQuery",
    "KHopQuery",
    "BatchResult",
    "Context",
    "ContextSet",
    "make_batch_khop",
    "random_source_batch",
    "LogicalPlan",
    "ExpandStep",
    "FixpointStep",
    "ReduceStep",
    "plan_khop",
    "plan_rpq",
    "plan_query",
    "evaluate_khop",
    "evaluate_rpq",
    "count_khop_paths",
]
