"""Cost-based planning: choose how to run a path query before lowering.

The structural planner (:mod:`repro.rpq.planner`) fixes *what* a query
computes; this module decides *how*, using the statistics a pinned
:class:`~repro.serve.epoch.Epoch` already carries:

* the cached out-degree histogram (:meth:`Epoch.degree_histogram`)
  supplies the average fanout of a wildcard expansion;
* the per-label edge counts (:meth:`Epoch.label_edge_counts`) supply
  label-filtered fanouts, so a hop over a rare label is costed as rare;
* the minimized DFA (:func:`~repro.rpq.automaton.minimize_dfa`, applied
  by ``build_dfa``) keeps the per-hop live-state sets — and with them
  the product-graph frontier caps — as small as the language allows.

From those inputs the planner estimates per-hop frontier sizes for the
forward plan and, for fixed-length expressions, for the *reverse* plan:
expanding the reversed-expression DFA from the candidate path *end*
nodes (the destinations of edges whose label the query can finish on)
and inverting the matches afterwards.  Whichever side is estimated
cheaper wins; queries that finish on a rare label start the reverse
expansion from a tiny seed set and skip the broad forward fan-out
entirely.  The decision, the estimates and an advisory engine hint are
recorded on the returned :class:`~repro.rpq.planner.LogicalPlan` as a
:class:`PlanDecision` (surfaced by ``LogicalPlan.explain()``).

Live executions and session-patched views carry no frozen statistics,
so they always plan forward — same structure, no cost model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.rpq.automaton import DFA, build_dfa
from repro.rpq.planner import (
    ExpandStep,
    LogicalPlan,
    PlanStep,
    ReduceStep,
    plan_query,
)
from repro.rpq.query import KHopQuery
from repro.rpq.regex import ANY_LABEL, reverse_expression

#: Reverse expansion must look at least this much cheaper than forward
#: before it is chosen — estimates are coarse, and ties should keep the
#: well-trodden forward path.
_REVERSE_MARGIN = 0.8


def epoch_of_view(view) -> Optional[object]:
    """The frozen :class:`Epoch` behind ``view`` when its statistics are
    usable for planning, else ``None``.

    Accepts a bare ``Epoch``, an unpatched ``EpochView``, or anything
    else (live runtime state, patched session views) — the latter plan
    forward without a cost model.  Structural checks keep this module
    free of a ``repro.serve`` import.
    """
    if view is None:
        return None
    epoch = getattr(view, "epoch", None)
    if epoch is not None:
        is_patched = getattr(view, "is_patched", None)
        if is_patched is not None and is_patched():
            return None
        return epoch
    if hasattr(view, "reverse_index"):
        return view
    return None


@dataclass(frozen=True)
class GraphCostStats:
    """Planner-facing summary of one epoch's frozen statistics."""

    num_rows: int
    num_nodes: int
    num_edges: int
    avg_out_degree: float
    #: Edge count per resolved label string (engine label semantics:
    #: unnamed integer labels count under ``str(label_id)``).
    label_counts: Dict[str, int]

    @classmethod
    def from_epoch(cls, epoch, label_names: Dict[int, str]) -> "GraphCostStats":
        histogram = epoch.degree_histogram()
        num_rows = int(histogram.sum())
        num_edges = int(
            (np.arange(len(histogram), dtype=np.int64) * histogram).sum()
        )
        counts: Dict[str, int] = {}
        for label_id, count in epoch.label_edge_counts().items():
            name = label_names.get(label_id, str(label_id))
            counts[name] = counts.get(name, 0) + count
        return cls(
            num_rows=num_rows,
            num_nodes=max(int(epoch.num_nodes), num_rows),
            num_edges=num_edges,
            avg_out_degree=num_edges / num_rows if num_rows else 0.0,
            label_counts=counts,
        )

    def label_fanout(self, label: str) -> float:
        """Expected out-edges per frontier node filtered to ``label``."""
        if self.num_rows == 0:
            return 0.0
        return self.label_counts.get(label, 0) / self.num_rows


@dataclass(frozen=True)
class PlanDecision:
    """What the cost-based planner chose for one query, and why."""

    direction: str
    forward_cost: float
    reverse_cost: Optional[float]
    #: Estimated frontier items after each hop of the chosen plan.
    hop_estimates: Tuple[float, ...]
    engine_hint: Optional[str]
    reason: str

    def explain_lines(self) -> List[str]:
        """The decision rendered for ``LogicalPlan.explain()``."""
        reverse = (
            f"{self.reverse_cost:.1f}" if self.reverse_cost is not None
            else "n/a"
        )
        lines = [
            f"cost: forward={self.forward_cost:.1f} reverse={reverse}",
            f"decision: {self.reason}",
        ]
        if self.hop_estimates:
            estimates = ", ".join(
                f"{estimate:.1f}" for estimate in self.hop_estimates
            )
            lines.append(f"frontier estimates per hop: [{estimates}]")
        if self.engine_hint is not None:
            lines.append(f"engine hint: {self.engine_hint}")
        return lines


def _dfa_states(dfa: DFA) -> Set[int]:
    states = {dfa.start} | set(dfa.accepting)
    states.update(dfa.transitions)
    states.update(dfa.default)
    states.update(dfa.default.values())
    for arcs in dfa.transitions.values():
        states.update(arcs.values())
    return states


def accepting_edge_labels(dfa: DFA) -> Tuple[Set[str], bool]:
    """Labels an accepted path can *end* on: ``(labels, wildcard)``.

    ``wildcard`` is true when some state reaches an accepting state via
    its default (any-label) arc, in which case every edge label can be
    final and ``labels`` is moot.
    """
    labels: Set[str] = set()
    wildcard = False
    for state in _dfa_states(dfa):
        default_target = dfa.default.get(state)
        if default_target is not None and default_target in dfa.accepting:
            wildcard = True
        for label, target in dfa.transitions.get(state, {}).items():
            if target in dfa.accepting:
                labels.add(label)
    return labels, wildcard


def _estimate_hops(
    dfa: Optional[DFA],
    hops: int,
    stats: GraphCostStats,
    start_size: float,
) -> Tuple[Tuple[float, ...], float]:
    """Per-hop frontier estimates and the total estimated item cost.

    Walks the DFA's live-state sets level by level: a hop whose live
    states only leave over concrete labels is costed with those labels'
    fanouts, a hop with a default (wildcard) arc with the average
    out-degree.  Frontier sizes cap at ``rows x live states`` — the
    product-graph bound — and the cost is the total number of frontier
    items processed (the quantity both engines charge per phase).
    """
    estimates: List[float] = []
    cost = max(start_size, 0.0)
    frontier = max(start_size, 0.0)
    states: Set[int] = {dfa.start} if dfa is not None else set()
    for _ in range(hops):
        if dfa is not None:
            wildcard = False
            labels: Set[str] = set()
            next_states: Set[int] = set()
            for state in states:
                for label, target in dfa.transitions.get(state, {}).items():
                    labels.add(label)
                    next_states.add(target)
                default_target = dfa.default.get(state)
                if default_target is not None:
                    wildcard = True
                    next_states.add(default_target)
            fanout = (
                stats.avg_out_degree
                if wildcard
                else sum(stats.label_fanout(label) for label in labels)
            )
            cap = float(stats.num_rows) * max(1, len(next_states))
            states = next_states
        else:
            fanout = stats.avg_out_degree
            cap = float(stats.num_rows)
        processed = frontier * fanout
        cost += processed
        frontier = min(processed, cap)
        estimates.append(frontier)
        if not frontier:
            break
    return tuple(estimates), cost


def _reverse_seed_nodes(
    epoch,
    labels: Set[str],
    wildcard: bool,
    label_names: Dict[int, str],
) -> Tuple[int, ...]:
    """The candidate path end nodes: destinations of final-label edges."""
    chunks: List[np.ndarray] = []
    for snapshot in epoch.snapshots:
        if len(snapshot.dsts) == 0:
            continue
        if wildcard:
            chunks.append(snapshot.dsts)
            continue
        present = np.unique(snapshot.labels)
        wanted = [
            int(label_id)
            for label_id in present.tolist()
            if label_names.get(label_id, str(label_id)) in labels
        ]
        if not wanted:
            continue
        mask = np.isin(snapshot.labels, wanted)
        chunks.append(snapshot.dsts[mask])
    if not chunks:
        return ()
    return tuple(np.unique(np.concatenate(chunks)).tolist())


class CostBasedPlanner:
    """Plans queries with epoch statistics: direction, bounds, engine.

    Stateless apart from its construction-time label table and policy
    knobs, so one instance is safely shared by every thread of a query
    processor; all per-query state lives on the returned plan.
    """

    def __init__(
        self,
        label_names: Optional[Dict[int, str]] = None,
        direction: str = "auto",
        engine_selection: bool = True,
    ) -> None:
        self._label_names = label_names or {}
        self._direction = direction
        self._engine_selection = engine_selection

    def plan(self, query, view=None) -> LogicalPlan:
        """A costed :class:`LogicalPlan` for ``query`` against ``view``."""
        base = plan_query(query)
        epoch = epoch_of_view(view)
        if epoch is None:
            base.decision = PlanDecision(
                direction="forward",
                forward_cost=0.0,
                reverse_cost=None,
                hop_estimates=(),
                engine_hint=None,
                reason="forward (no frozen epoch statistics: live "
                       "execution or session-patched view)",
            )
            return base
        stats = GraphCostStats.from_epoch(epoch, self._label_names)
        batch_size = float(len(query.sources))

        if isinstance(query, KHopQuery):
            estimates, forward_cost = _estimate_hops(
                None, query.hops, stats, batch_size
            )
            base.decision = PlanDecision(
                direction="forward",
                forward_cost=forward_cost,
                reverse_cost=None,
                hop_estimates=estimates,
                engine_hint=self._engine_hint(base, estimates, stats),
                reason="forward (k-hop plans use the bit-mask path)",
            )
            return base

        ast = query.ast()
        if not ast.is_fixed_length():
            # Kleene plans saturate: every product-graph edge relaxes at
            # most once, so cost ~ edges x states either way; reverse
            # would not shrink it and complicates accumulate semantics.
            dfa = base.dfa
            num_states = dfa.num_states if dfa is not None else 1
            forward_cost = batch_size + float(stats.num_edges) * num_states
            base.decision = PlanDecision(
                direction="forward",
                forward_cost=forward_cost,
                reverse_cost=None,
                hop_estimates=(),
                engine_hint=self._engine_hint(base, (), stats),
                reason="forward (variable-length plans run to fixpoint)",
            )
            return base

        length = ast.fixed_length() or 0
        forward_estimates, forward_cost = _estimate_hops(
            base.dfa, length, stats, batch_size
        )
        reverse_cost: Optional[float] = None
        if (
            self._direction == "auto"
            and length >= 1
            and stats.num_rows > 0
            and base.dfa is not None
        ):
            final_labels, final_wildcard = accepting_edge_labels(base.dfa)
            seed_estimate = float(
                stats.num_edges
                if final_wildcard
                else sum(
                    stats.label_counts.get(label, 0) for label in final_labels
                )
            )
            seed_estimate = min(seed_estimate, float(stats.num_nodes))
            reverse_dfa = build_dfa(reverse_expression(ast))
            reverse_estimates, reverse_cost = _estimate_hops(
                reverse_dfa, length, stats, seed_estimate
            )
            if reverse_cost < forward_cost * _REVERSE_MARGIN:
                seeds = _reverse_seed_nodes(
                    epoch, final_labels, final_wildcard, self._label_names
                )
                steps: List[PlanStep] = [
                    ExpandStep(label=ANY_LABEL) for _ in range(length)
                ]
                steps.append(ReduceStep())
                plan = LogicalPlan(
                    steps=steps,
                    accumulate_results=False,
                    dfa=reverse_dfa,
                    direction="reverse",
                    reverse_seeds=seeds,
                )
                plan.decision = PlanDecision(
                    direction="reverse",
                    forward_cost=forward_cost,
                    reverse_cost=reverse_cost,
                    hop_estimates=reverse_estimates,
                    engine_hint=self._engine_hint(plan, reverse_estimates, stats),
                    reason=(
                        "reverse (accepting side is rarer: "
                        f"{len(seeds)} seed end nodes vs "
                        f"{batch_size:.0f}-source forward fan-out)"
                    ),
                )
                return plan
        base.decision = PlanDecision(
            direction="forward",
            forward_cost=forward_cost,
            reverse_cost=reverse_cost,
            hop_estimates=forward_estimates,
            engine_hint=self._engine_hint(base, forward_estimates, stats),
            reason=(
                "forward (cheaper than reverse expansion)"
                if reverse_cost is not None
                else "forward (reverse not applicable)"
            ),
        )
        return base

    def _engine_hint(
        self,
        plan: LogicalPlan,
        estimates: Tuple[float, ...],
        stats: GraphCostStats,
    ) -> Optional[str]:
        """Advisory backend choice (``None`` = keep the configured one).

        Mirrors the matrix engine's own dense-frontier crossover: deep
        plans whose estimated frontiers saturate a large share of the
        rows are exactly where the masked-SpGEMM pull backend wins;
        everything else keeps the session's configured engine.
        """
        if not self._engine_selection:
            return None
        if plan.num_expansions <= 1 or len(estimates) <= 1:
            return None
        if stats.num_rows <= 0:
            return None
        saturation = max(estimates) / float(stats.num_rows)
        if saturation >= 0.5 and stats.avg_out_degree >= 2.0:
            return "matrix"
        return None
