"""Logical planning: from a path query to a matrix-based execution plan.

Moctopus (like RedisGraph) evaluates path queries as sequences of sparse
matrix operations.  The planner turns a query into a
:class:`LogicalPlan`, a linear list of steps:

* :class:`ExpandStep` — one ``smxm``: multiply the current frontier
  matrix by the (label-filtered) adjacency matrix, i.e. advance every
  pending path by one edge;
* :class:`FixpointStep` — repeat an expansion until no new reachable
  pairs appear (Kleene closure);
* :class:`ReduceStep` — the final ``mwait``: gather per-partition partial
  results and reduce them into the answer matrix.

For the paper's k-hop query the plan is exactly ``k`` expand steps plus
one reduce step — the ``ans = Q x Adj x ... x Adj`` plan of Figure 2.
General RPQs are planned against their DFA: each step expands all
in-flight automaton states simultaneously, so the execution engines only
ever need the three step types above.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Tuple, Union as TypingUnion

from repro.rpq.automaton import DFA
from repro.rpq.query import KHopQuery, RPQuery
from repro.rpq.regex import ANY_LABEL

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.rpq.cost_planner import PlanDecision


@dataclass(frozen=True)
class ExpandStep:
    """One frontier expansion (an ``smxm`` operator).

    Attributes
    ----------
    label:
        Edge label to follow; :data:`ANY_LABEL` follows every edge.
    accumulate:
        When true, destinations reached by this step are added to the
        result set even if later steps follow (used when the automaton
        accepts at this depth).
    """

    label: str = ANY_LABEL
    accumulate: bool = False


@dataclass(frozen=True)
class FixpointStep:
    """Expand repeatedly until the frontier stops growing (Kleene closure)."""

    label: str = ANY_LABEL
    #: Safety bound on iterations; ``None`` means the graph's node count.
    max_iterations: Optional[int] = None


@dataclass(frozen=True)
class ReduceStep:
    """The ``mwait`` operator: gather partial results and build ``ans``."""


PlanStep = TypingUnion[ExpandStep, FixpointStep, ReduceStep]


@dataclass
class LogicalPlan:
    """A linear matrix-based execution plan."""

    steps: List[PlanStep] = field(default_factory=list)
    #: Whether result semantics are "exactly the final frontier" (k-hop)
    #: or "every accumulated accepting frontier" (general RPQ).
    accumulate_results: bool = False
    #: DFA used by the general evaluator (``None`` for pure k-hop plans).
    dfa: Optional[DFA] = None
    #: Expansion direction: ``"forward"`` walks source-to-destination;
    #: ``"reverse"`` walks a reversed-expression DFA from candidate end
    #: nodes and inverts the matches at the end (chosen by the cost-based
    #: planner when the accepting side of the graph is rarer).
    direction: str = "forward"
    #: For reverse plans: the candidate end nodes to expand from (the
    #: destinations of edges whose label the original DFA can accept on).
    reverse_seeds: Optional[Tuple[int, ...]] = None
    #: Cost-planner decision record (``None`` for structure-only plans).
    decision: Optional["PlanDecision"] = None

    @property
    def num_expansions(self) -> int:
        """Number of expand steps (fixpoints count once)."""
        return sum(
            1 for step in self.steps if isinstance(step, (ExpandStep, FixpointStep))
        )

    def explain(self) -> str:
        """Human-readable plan description (one line per step)."""
        lines = []
        if self.direction != "forward" or self.decision is not None:
            seeds = (
                f", seeds={len(self.reverse_seeds)}"
                if self.reverse_seeds is not None
                else ""
            )
            lines.append(f"direction: {self.direction}{seeds}")
        if self.decision is not None:
            lines.extend(self.decision.explain_lines())
        for index, step in enumerate(self.steps):
            if isinstance(step, ExpandStep):
                label = "any" if step.label == ANY_LABEL else step.label
                suffix = " (accumulate)" if step.accumulate else ""
                lines.append(f"{index}: smxm expand label={label}{suffix}")
            elif isinstance(step, FixpointStep):
                label = "any" if step.label == ANY_LABEL else step.label
                lines.append(f"{index}: smxm fixpoint label={label}")
            else:
                lines.append(f"{index}: mwait reduce")
        return "\n".join(lines)


def plan_khop(query: KHopQuery) -> LogicalPlan:
    """Plan a k-hop query: ``k`` expansions followed by a reduction."""
    steps: List[PlanStep] = [ExpandStep(label=ANY_LABEL) for _ in range(query.hops)]
    steps.append(ReduceStep())
    return LogicalPlan(steps=steps, accumulate_results=False)


def plan_rpq(query: RPQuery) -> LogicalPlan:
    """Plan a general RPQ.

    Fixed-length, single-label-per-position expressions (the common case
    in practice: chains of labels, possibly with alternation resolved by
    the automaton) plan into a chain of expand steps.  Everything else
    plans into a DFA-guided plan whose expansion count is bounded by the
    automaton's state count times the graph diameter; the execution
    engines use the attached DFA for the per-step label filtering.
    """
    ast = query.ast()
    if ast.is_fixed_length():
        length = ast.fixed_length() or 0
        dfa = query.dfa()
        steps: List[PlanStep] = [ExpandStep(label=ANY_LABEL) for _ in range(length)]
        steps.append(ReduceStep())
        return LogicalPlan(steps=steps, accumulate_results=False, dfa=dfa)
    dfa = query.dfa()
    steps = [FixpointStep(label=ANY_LABEL), ReduceStep()]
    return LogicalPlan(steps=steps, accumulate_results=True, dfa=dfa)


def plan_query(query) -> LogicalPlan:
    """Dispatch to :func:`plan_khop` or :func:`plan_rpq` by query type."""
    if isinstance(query, KHopQuery):
        return plan_khop(query)
    if isinstance(query, RPQuery):
        return plan_rpq(query)
    raise TypeError(f"unsupported query type {type(query).__name__}")
