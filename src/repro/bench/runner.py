"""Experiment runner: the engine behind every figure/table benchmark.

The runner builds the three systems of the paper's evaluation on the
same generated graph, executes the same workload against each of them
and collects the simulated latencies:

* ``moctopus``   — :class:`repro.core.Moctopus` with the paper's
  configuration (radical greedy + labor division + migration);
* ``pim-hash``   — :class:`repro.baselines.PIMHashSystem`;
* ``redisgraph`` — :class:`repro.baselines.RedisGraphEngine`.

Each experiment function returns a list of per-trace result rows (plain
dictionaries) so that both the pytest-benchmark harness and EXPERIMENTS.md
generation can consume it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.baselines.pim_hash import PIMHashSystem
from repro.baselines.redisgraph import RedisGraphEngine
from repro.bench.workloads import (
    DEFAULT_BATCH_SIZE,
    khop_workload,
    scaled_cost_model,
    update_workload,
)

__all__ = [
    "SystemSet",
    "SystemProvider",
    "build_systems",
    "load_trace",
    "run_khop_experiment",
    "run_ipc_experiment",
    "run_update_experiment",
]
from repro.core.config import MoctopusConfig
from repro.core.system import Moctopus
from repro.graph.datasets import dataset_spec, load_dataset
from repro.graph.digraph import DiGraph
from repro.pim.cost_model import CostModel


@dataclass
class SystemSet:
    """The three engines loaded with the same graph."""

    graph: DiGraph
    moctopus: Moctopus
    pim_hash: PIMHashSystem
    redisgraph: RedisGraphEngine

    def by_name(self) -> Dict[str, object]:
        """Mapping from system name to engine instance."""
        return {
            "moctopus": self.moctopus,
            "pim-hash": self.pim_hash,
            "redisgraph": self.redisgraph,
        }


def build_systems(
    graph: DiGraph,
    cost_model: Optional[CostModel] = None,
    warmup_rounds: int = 2,
) -> SystemSet:
    """Load ``graph`` into Moctopus, PIM-hash and the RedisGraph baseline.

    ``warmup_rounds`` batch queries are executed on the Moctopus instance
    before it is handed to an experiment so that the greedy-adaptive
    partitioning has gone through its detection/migration cycle and the
    measured placement is the steady state, as it would be on a live
    database.
    """
    cost_model = cost_model or scaled_cost_model()
    moctopus = Moctopus.from_graph(graph, MoctopusConfig(cost_model=cost_model))
    pim_hash = PIMHashSystem.from_graph(graph, cost_model=cost_model)
    redisgraph = RedisGraphEngine.from_graph(graph, cost_model=cost_model)
    for round_index in range(warmup_rounds):
        query = khop_workload(graph, hops=3, batch_size=64, seed=9000 + round_index)
        moctopus.batch_khop(query.sources, query.hops)
    return SystemSet(
        graph=graph, moctopus=moctopus, pim_hash=pim_hash, redisgraph=redisgraph
    )


def load_trace(trace_id: int, scale: float = 1.0) -> DiGraph:
    """Generate the synthetic stand-in of a Table 1 trace."""
    return load_dataset(trace_id, scale=scale)


class SystemProvider:
    """Builds and caches one :class:`SystemSet` per trace.

    Benchmarks share a provider so that the (comparatively expensive)
    graph generation and bulk loading happen once per trace per session,
    not once per figure.
    """

    def __init__(
        self,
        scale: float = 1.0,
        cost_model: Optional[CostModel] = None,
        warmup_rounds: int = 2,
    ) -> None:
        self.scale = scale
        self.cost_model = cost_model or scaled_cost_model()
        self.warmup_rounds = warmup_rounds
        self._cache: Dict[int, SystemSet] = {}

    def get(self, trace_id: int) -> SystemSet:
        """The cached system set of ``trace_id`` (building it on first use)."""
        if trace_id not in self._cache:
            graph = load_trace(trace_id, scale=self.scale)
            self._cache[trace_id] = build_systems(
                graph, cost_model=self.cost_model, warmup_rounds=self.warmup_rounds
            )
        return self._cache[trace_id]

    def clear(self) -> None:
        """Drop every cached system set."""
        self._cache.clear()


# ----------------------------------------------------------------------
# Figure 4: k-hop query latency
# ----------------------------------------------------------------------
def run_khop_experiment(
    trace_ids: Iterable[int],
    hops: int,
    batch_size: int = DEFAULT_BATCH_SIZE,
    scale: float = 1.0,
    cost_model: Optional[CostModel] = None,
    seed: int = 0,
    provider: Optional[SystemProvider] = None,
) -> List[Dict[str, object]]:
    """Latency of batch k-hop queries per trace for the three systems.

    Each result row contains the trace id/name, the simulated latency in
    milliseconds per system, and Moctopus's speedups over the other two.
    """
    rows: List[Dict[str, object]] = []
    for trace_id in trace_ids:
        spec = dataset_spec(trace_id)
        if provider is not None:
            systems = provider.get(trace_id)
        else:
            systems = build_systems(
                load_trace(trace_id, scale=scale), cost_model=cost_model
            )
        graph = systems.graph
        query = khop_workload(graph, hops=hops, batch_size=batch_size, seed=seed)

        moctopus_result, moctopus_stats = systems.moctopus.batch_khop(
            query.sources, query.hops
        )
        pim_hash_result, pim_hash_stats = systems.pim_hash.batch_khop(
            query.sources, query.hops
        )
        redis_result, redis_stats = systems.redisgraph.batch_khop(
            query.sources, query.hops
        )

        if moctopus_result.total_matches != redis_result.total_matches:
            raise AssertionError(
                f"trace #{trace_id}: result mismatch between Moctopus and the "
                "RedisGraph baseline"
            )
        if moctopus_result.total_matches != pim_hash_result.total_matches:
            raise AssertionError(
                f"trace #{trace_id}: result mismatch between Moctopus and PIM-hash"
            )

        rows.append(
            {
                "trace": f"#{trace_id}",
                "name": spec.name,
                "hops": hops,
                "moctopus_ms": moctopus_stats.total_time_ms,
                "pim_hash_ms": pim_hash_stats.total_time_ms,
                "redisgraph_ms": redis_stats.total_time_ms,
                "speedup_vs_redisgraph": (
                    redis_stats.total_time_ms / moctopus_stats.total_time_ms
                ),
                "speedup_vs_pim_hash": (
                    pim_hash_stats.total_time_ms / moctopus_stats.total_time_ms
                ),
                "matches": moctopus_result.total_matches,
            }
        )
    return rows


# ----------------------------------------------------------------------
# Figure 5: IPC cost of 3-hop queries
# ----------------------------------------------------------------------
def run_ipc_experiment(
    trace_ids: Iterable[int],
    hops: int = 3,
    batch_size: int = DEFAULT_BATCH_SIZE,
    scale: float = 1.0,
    cost_model: Optional[CostModel] = None,
    seed: int = 0,
    provider: Optional[SystemProvider] = None,
) -> List[Dict[str, object]]:
    """Inter-PIM communication time of Moctopus vs PIM-hash per trace."""
    rows: List[Dict[str, object]] = []
    for trace_id in trace_ids:
        spec = dataset_spec(trace_id)
        if provider is not None:
            systems = provider.get(trace_id)
        else:
            systems = build_systems(
                load_trace(trace_id, scale=scale), cost_model=cost_model
            )
        graph = systems.graph
        moctopus = systems.moctopus
        pim_hash = systems.pim_hash
        query = khop_workload(graph, hops=hops, batch_size=batch_size, seed=seed)

        _, moctopus_stats = moctopus.batch_khop(query.sources, query.hops)
        _, pim_hash_stats = pim_hash.batch_khop(query.sources, query.hops)

        reduction = 0.0
        if pim_hash_stats.ipc_time > 0:
            reduction = 1.0 - moctopus_stats.ipc_time / pim_hash_stats.ipc_time
        rows.append(
            {
                "trace": f"#{trace_id}",
                "name": spec.name,
                "moctopus_ipc_ms": moctopus_stats.ipc_time_ms,
                "pim_hash_ipc_ms": pim_hash_stats.ipc_time_ms,
                "ipc_reduction": reduction,
                "moctopus_ipc_bytes": moctopus_stats.ipc.bytes_moved,
                "pim_hash_ipc_bytes": pim_hash_stats.ipc.bytes_moved,
            }
        )
    return rows


# ----------------------------------------------------------------------
# Figure 6: graph update latency
# ----------------------------------------------------------------------
def run_update_experiment(
    trace_ids: Iterable[int],
    batch_size: int = DEFAULT_BATCH_SIZE,
    scale: float = 1.0,
    cost_model: Optional[CostModel] = None,
    seed: int = 0,
) -> List[Dict[str, object]]:
    """Insertion and deletion latency of Moctopus vs RedisGraph per trace."""
    rows: List[Dict[str, object]] = []
    for trace_id in trace_ids:
        spec = dataset_spec(trace_id)
        graph = load_trace(trace_id, scale=scale)
        cost = cost_model or scaled_cost_model()
        workload = update_workload(graph, batch_size=batch_size, seed=seed)

        moctopus = Moctopus.from_graph(graph, MoctopusConfig(cost_model=cost))
        redisgraph = RedisGraphEngine.from_graph(graph, cost_model=cost)

        moctopus_insert = moctopus.insert_edges(workload.insert_edges)
        redis_insert = redisgraph.insert_edges(workload.insert_edges)
        moctopus_delete = moctopus.delete_edges(workload.delete_edges)
        redis_delete = redisgraph.delete_edges(workload.delete_edges)

        rows.append(
            {
                "trace": f"#{trace_id}",
                "name": spec.name,
                "moctopus_insert_ms": moctopus_insert.total_time_ms,
                "redisgraph_insert_ms": redis_insert.total_time_ms,
                "insert_speedup": (
                    redis_insert.total_time_ms / moctopus_insert.total_time_ms
                ),
                "moctopus_delete_ms": moctopus_delete.total_time_ms,
                "redisgraph_delete_ms": redis_delete.total_time_ms,
                "delete_speedup": (
                    redis_delete.total_time_ms / moctopus_delete.total_time_ms
                ),
            }
        )
    return rows
