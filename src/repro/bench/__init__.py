"""Benchmark support: workloads, experiment runner and report formatting.

The ``benchmarks/`` directory at the repository root contains one
pytest-benchmark module per table/figure of the paper; all of them are
thin wrappers around the functions in this package so the same
experiments can also be driven from a notebook or an example script.
"""

from repro.bench.workloads import (
    DATASET_SCALE_FRACTION,
    DEFAULT_BATCH_SIZE,
    DEFAULT_NUM_MODULES,
    PAPER_BATCH_SIZE,
    UpdateWorkload,
    khop_workload,
    scaled_cost_model,
    update_workload,
)
from repro.bench.runner import (
    SystemProvider,
    SystemSet,
    build_systems,
    load_trace,
    run_ipc_experiment,
    run_khop_experiment,
    run_update_experiment,
)
from repro.bench.report import (
    format_table,
    geometric_mean,
    rows_to_dicts,
    speedup_summary,
)

__all__ = [
    "DATASET_SCALE_FRACTION",
    "DEFAULT_BATCH_SIZE",
    "DEFAULT_NUM_MODULES",
    "PAPER_BATCH_SIZE",
    "UpdateWorkload",
    "khop_workload",
    "update_workload",
    "scaled_cost_model",
    "SystemProvider",
    "SystemSet",
    "build_systems",
    "load_trace",
    "run_khop_experiment",
    "run_ipc_experiment",
    "run_update_experiment",
    "format_table",
    "geometric_mean",
    "speedup_summary",
    "rows_to_dicts",
]
