"""Workload construction for the benchmark harness.

The paper's evaluation setup (Section 4.1):

* batch k-hop path queries with randomly selected start nodes,
  batch size 64 K;
* update batches of 64 K randomly selected edge insertions and
  deletions;
* one UPMEM rank (64 PIM modules) and one dedicated host CPU core with a
  22 MB LLC.

This reproduction scales the graphs down by roughly 1/500 (see
``repro.graph.datasets``), so the workload constructors here scale the
batch sizes and the host LLC by the same factor to keep every engine in
the same operating regime as the paper (working sets exceed the cache,
batches are large relative to the graph).  The scale knobs are explicit
parameters so higher-fidelity runs just pass larger values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.graph.digraph import DiGraph
from repro.graph.stream import UpdateStream
from repro.pim.cost_model import CostModel
from repro.rpq.query import KHopQuery, random_source_batch

#: The paper's batch size (64 K queries / 64 K updates).
PAPER_BATCH_SIZE = 64 * 1024
#: The paper's host LLC (22 MB Xeon Silver).
PAPER_LLC_BYTES = 22 * 1024 * 1024
#: Scale factor of the synthetic datasets relative to the SNAP originals.
DATASET_SCALE_FRACTION = 1.0 / 125.0
#: Default benchmark batch size (the paper's 64 K scaled down to keep the
#: batch-to-graph ratio in the same regime).
DEFAULT_BATCH_SIZE = 128
#: Default number of PIM modules (one UPMEM rank, as in the paper).
DEFAULT_NUM_MODULES = 64


def scaled_cost_model(
    num_modules: int = DEFAULT_NUM_MODULES,
    scale_fraction: float = DATASET_SCALE_FRACTION,
    llc_bytes: int = 32 * 1024,
) -> CostModel:
    """Cost model scaled consistently with the scaled-down datasets.

    Two families of parameters need adjusting when the workload shrinks
    by ~500x; per-byte and per-access costs stay untouched because they
    are intensive quantities:

    * **LLC size** — keeping the 22 MB LLC while shrinking the graphs
      500x would put the RedisGraph baseline entirely in cache, a regime
      the paper never measures.  The default of 32 KB keeps the
      working-set-to-LLC ratio of every trace in the same 1x-10x band as
      the originals against the real 22 MB cache.
    * **Fixed per-operation latencies** (CPC batch-transfer setup, PIM
      kernel launch) — these are amortised over 64 K-query batches in the
      paper; over a 128-query batch they would artificially dominate, so
      they are scaled by the same fraction as the data.
    """
    return CostModel(
        num_modules=num_modules,
        host_llc_bytes=llc_bytes,
        cpc_transfer_latency=CostModel.cpc_transfer_latency * scale_fraction,
        pim_launch_latency=CostModel.pim_launch_latency * scale_fraction,
    )


@dataclass(frozen=True)
class UpdateWorkload:
    """An insertion batch and a deletion batch for one graph."""

    insert_edges: List[Tuple[int, int]]
    delete_edges: List[Tuple[int, int]]

    @property
    def batch_size(self) -> int:
        """Number of operations per batch."""
        return len(self.insert_edges)


def khop_workload(
    graph: DiGraph,
    hops: int,
    batch_size: int = DEFAULT_BATCH_SIZE,
    seed: int = 0,
) -> KHopQuery:
    """Batch k-hop query with randomly selected start nodes."""
    nodes = list(graph.nodes())
    sources = random_source_batch(nodes, batch_size, seed=seed)
    return KHopQuery(hops=hops, sources=sources)


def update_workload(
    graph: DiGraph,
    batch_size: int = DEFAULT_BATCH_SIZE,
    seed: int = 0,
) -> UpdateWorkload:
    """Random insertion and deletion batches for the Figure 6 experiment."""
    stream = UpdateStream(graph, seed=seed)
    inserts = [op.edge for op in stream.insertion_batch(batch_size)]
    deletes = [op.edge for op in stream.deletion_batch(batch_size)]
    return UpdateWorkload(insert_edges=inserts, delete_edges=deletes)
