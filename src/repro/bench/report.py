"""Report formatting for the benchmark harness.

The benchmarks print plain-text tables whose rows mirror the series of
the paper's figures (one row per SNAP trace, one column per system).
Nothing here depends on matplotlib — the harness is expected to run in
headless CI — but the table data is also exposed as lists of dictionaries
so a notebook can plot it if desired.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render an aligned plain-text table."""
    materialized = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(header.ljust(widths[index]) for index, header in enumerate(headers)),
        "  ".join("-" * widths[index] for index in range(len(headers))),
    ]
    for row in materialized:
        lines.append(
            "  ".join(cell.ljust(widths[index]) for index, cell in enumerate(row))
        )
    return "\n".join(lines)


def _format_cell(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000 or abs(cell) < 0.01:
            return f"{cell:.3e}"
        return f"{cell:.3f}"
    return str(cell)


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values (0.0 for an empty input)."""
    values = [value for value in values if value > 0]
    if not values:
        return 0.0
    return math.exp(sum(math.log(value) for value in values) / len(values))


def speedup_summary(speedups: Dict[str, float]) -> str:
    """One-line min/geomean/max summary of a speedup mapping."""
    if not speedups:
        return "no data"
    values = list(speedups.values())
    return (
        f"min {min(values):.2f}x, geomean {geometric_mean(values):.2f}x, "
        f"max {max(values):.2f}x"
    )


def rows_to_dicts(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> List[Dict[str, object]]:
    """Convert a table into a list of per-row dictionaries."""
    return [dict(zip(headers, row)) for row in rows]
