"""The paper's dataset suite (Table 1), as synthetic stand-ins.

The evaluation of the paper uses 15 real-world SNAP graphs with more
than 200 K nodes each (Table 1).  This module defines a registry of 15
synthetic datasets — one per SNAP trace — generated deterministically
from the structural family of the original graph:

* road networks (#1-#3) — lattices with bounded degree, 0 % high-degree
  nodes;
* citation / social / communication / web graphs (#4-#6, #8-#12) —
  power-law graphs with the skew tuned so the high-degree-node fraction
  lands in the same class as the original (0.3 % - 4.8 %);
* co-purchase / collaboration graphs (#7, #13-#15) — community graphs
  with near-zero or low high-degree fractions.

Absolute node counts are scaled down by roughly 125x (the originals
range from 262 K to 3.77 M nodes, which is beyond what a pure-Python
simulator can sweep in a benchmark run), but the *relative* sizes and
the skew classes are preserved; the ``scale`` parameter of
:func:`load_dataset` grows every graph proportionally when more fidelity
is wanted.

Documented substitution (see DESIGN.md): the paper's conclusions rest on
skewness and locality, which the stand-ins reproduce; absolute latencies
are not expected to match.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.graph.digraph import DiGraph
from repro.graph.generators import community_graph, power_law_graph, road_network

#: The paper's high-degree classification threshold (out-degree > 16).
HIGH_DEGREE_THRESHOLD = 16


@dataclass(frozen=True)
class DatasetSpec:
    """Metadata describing one of the paper's Table 1 traces.

    Attributes
    ----------
    trace_id:
        The paper's trace number, ``1`` to ``15``.
    name:
        SNAP dataset name, e.g. ``"roadNet-CA"``.
    family:
        Structural family: ``"road"``, ``"power_law"`` or ``"community"``.
    paper_nodes:
        Node count reported in Table 1.
    paper_high_degree_pct:
        Percentage of high-degree nodes reported in Table 1.
    base_nodes:
        Node count of the synthetic stand-in at ``scale=1.0``.
    skew:
        Skew knob passed to the power-law generator (ignored for other
        families).
    """

    trace_id: int
    name: str
    family: str
    paper_nodes: int
    paper_high_degree_pct: float
    base_nodes: int
    skew: float = 0.0

    @property
    def is_road_network(self) -> bool:
        """Whether the trace is one of the road networks (#1-#3)."""
        return self.family == "road"

    @property
    def is_skewed(self) -> bool:
        """Whether the paper classifies the trace as highly skewed.

        The paper singles out traces #5, #6, #8, #11 and #12 when
        discussing skew-induced load imbalance; operationally we treat
        any trace with more than 2 % high-degree nodes, or wiki-Talk's
        extreme in-degree skew, as "highly skewed".
        """
        return self.trace_id in {5, 6, 8, 11, 12}


#: Table 1 of the paper, in trace order.  ``base_nodes`` keeps the
#: relative ordering of the real node counts at roughly 1/125 scale,
#: which is large enough for graph locality to be preservable across one
#: UPMEM rank's worth of PIM modules (64) while staying tractable for a
#: pure-Python simulator.
DATASETS: List[DatasetSpec] = [
    DatasetSpec(1, "roadNet-CA", "road", 1_965_206, 0.0, 15_876),
    DatasetSpec(2, "roadNet-PA", "road", 1_088_092, 0.0, 8_836),
    DatasetSpec(3, "roadNet-TX", "road", 1_379_917, 0.0, 11_236),
    DatasetSpec(4, "cit-patents", "power_law", 3_774_768, 2.83, 30_000, skew=0.75),
    DatasetSpec(5, "com-youtube", "power_law", 1_134_890, 2.07, 9_200, skew=0.85),
    DatasetSpec(6, "com-DBLP", "power_law", 317_080, 3.10, 2_560, skew=0.80),
    DatasetSpec(7, "com-amazon", "community", 334_863, 0.62, 2_720),
    DatasetSpec(8, "wiki-Talk", "power_law", 2_394_385, 0.50, 19_200, skew=0.95),
    DatasetSpec(9, "email-EuAll", "power_law", 265_214, 0.29, 2_120, skew=0.60),
    DatasetSpec(10, "web-Google", "power_law", 875_713, 1.29, 7_000, skew=0.70),
    DatasetSpec(11, "web-NotreDame", "power_law", 325_729, 2.86, 2_640, skew=0.85),
    DatasetSpec(12, "web-Stanford", "power_law", 281_903, 4.84, 2_280, skew=0.90),
    DatasetSpec(13, "amazon0312", "community", 262_111, 0.0, 2_120),
    DatasetSpec(14, "amazon0505", "community", 410_236, 0.0, 3_280),
    DatasetSpec(15, "amazon0601", "community", 403_394, 0.0, 3_240),
]

_BY_TRACE: Dict[int, DatasetSpec] = {spec.trace_id: spec for spec in DATASETS}
_BY_NAME: Dict[str, DatasetSpec] = {spec.name: spec for spec in DATASETS}


def dataset_spec(identifier) -> DatasetSpec:
    """Look up a dataset spec by trace id (int) or SNAP name (str)."""
    if isinstance(identifier, int):
        if identifier not in _BY_TRACE:
            raise KeyError(f"unknown trace id {identifier}; valid ids are 1..15")
        return _BY_TRACE[identifier]
    if identifier not in _BY_NAME:
        raise KeyError(
            f"unknown dataset {identifier!r}; valid names: {sorted(_BY_NAME)}"
        )
    return _BY_NAME[identifier]


def list_datasets() -> List[DatasetSpec]:
    """All 15 dataset specs in trace order."""
    return list(DATASETS)


def road_network_specs() -> List[DatasetSpec]:
    """The road-network traces (#1-#3) used for long path queries."""
    return [spec for spec in DATASETS if spec.is_road_network]


def _build_road(spec: DatasetSpec, num_nodes: int, seed: int) -> DiGraph:
    side = max(2, int(math.sqrt(num_nodes)))
    return road_network(rows=side, cols=side, seed=seed)


def _build_power_law(spec: DatasetSpec, num_nodes: int, seed: int) -> DiGraph:
    return power_law_graph(
        num_nodes=num_nodes,
        edges_per_node=4,
        skew=spec.skew,
        seed=seed,
    )


def _build_community(spec: DatasetSpec, num_nodes: int, seed: int) -> DiGraph:
    community_size = 32
    num_communities = max(1, num_nodes // community_size)
    hub_fraction = 0.01 if spec.paper_high_degree_pct > 0 else 0.0
    return community_graph(
        num_communities=num_communities,
        community_size=community_size,
        intra_edges_per_node=5,
        inter_edge_fraction=0.05,
        hub_fraction=hub_fraction,
        seed=seed,
    )


_BUILDERS: Dict[str, Callable[[DatasetSpec, int, int], DiGraph]] = {
    "road": _build_road,
    "power_law": _build_power_law,
    "community": _build_community,
}


def load_dataset(
    identifier,
    scale: float = 1.0,
    seed: Optional[int] = None,
) -> DiGraph:
    """Construct the synthetic stand-in for one of the Table 1 traces.

    Parameters
    ----------
    identifier:
        Trace id (``1``-``15``) or SNAP name (e.g. ``"web-Google"``).
    scale:
        Multiplier on the stand-in's base node count.  ``scale=1.0`` keeps
        benchmarks fast; raise it (e.g. ``scale=50``) for higher-fidelity
        runs.
    seed:
        RNG seed; defaults to the trace id so each trace is distinct but
        reproducible.

    Returns
    -------
    DiGraph
        The generated graph.
    """
    spec = dataset_spec(identifier)
    if scale <= 0:
        raise ValueError("scale must be positive")
    num_nodes = max(16, int(spec.base_nodes * scale))
    effective_seed = spec.trace_id if seed is None else seed
    builder = _BUILDERS[spec.family]
    return builder(spec, num_nodes, effective_seed)


def dataset_statistics(graph: DiGraph, threshold: int = HIGH_DEGREE_THRESHOLD) -> Dict[str, float]:
    """Table 1 style statistics for a generated graph."""
    return {
        "nodes": graph.num_nodes,
        "edges": graph.num_edges,
        "high_degree_nodes": len(graph.high_degree_nodes(threshold)),
        "high_degree_pct": 100.0 * graph.high_degree_fraction(threshold),
    }
