"""Sparse matrices for matrix-based graph operations.

Two representations are provided:

* :class:`BooleanMatrix` — a row-major dictionary-of-sets sparse boolean
  matrix.  This is the shape Moctopus uses: the adjacency matrix is
  partitioned *by row* across computing nodes, and each row is the
  next-hop set of a graph node.  The batch query matrix ``Q`` (one row
  per query, one column per source node) and the answer matrix ``ans``
  have the same shape.
* :class:`SemiringMatrix` — a general dictionary-of-dictionaries sparse
  matrix parameterised by a :class:`~repro.graph.semiring.Semiring`,
  used by the reference evaluator and by the path-counting analysis.

Both implement ``mxm`` (matrix-matrix multiply) with row-gather
semantics: the product ``C = A x B`` gathers, for every stored entry
``A[i, k]``, the row ``B[k, :]`` and accumulates it into ``C[i, :]``.
That access pattern — one random row fetch per frontier entry — is
exactly the pointer chasing the paper identifies as the memory-wall
bottleneck, and it is what the PIM cost model charges for.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

import numpy as np

from repro.graph.digraph import DiGraph
from repro.graph.semiring import BOOLEAN, COUNTING, Semiring

#: Stored-entry count below which ``mxm`` stays on the scalar path — the
#: numpy fast path's array setup costs more than it saves on tiny
#: frontiers.  Both paths are result-identical, so the crossover is a
#: pure performance knob.
_NUMPY_MXM_THRESHOLD = 64

#: Magnitude bound under which an integer semiring product provably fits
#: in int64 (the fast path falls back to exact python integers past it).
_INT64_SAFE_BOUND = 2 ** 62

#: Largest integer float64 represents exactly; integer inputs that get
#: promoted to float past this would silently lose precision.
_FLOAT64_EXACT_INT = 2 ** 53


def _csr_of_sets(rows: Dict[int, Set[int]]):
    """``(row_ids, indptr, cols)`` CSR arrays of a dict-of-sets matrix.

    ``row_ids`` is sorted so membership lookups can use searchsorted.
    """
    row_ids = np.asarray(sorted(rows), dtype=np.int64)
    chunks = [
        np.fromiter(rows[int(row)], dtype=np.int64, count=len(rows[int(row)]))
        for row in row_ids
    ]
    sizes = np.asarray([len(chunk) for chunk in chunks], dtype=np.int64)
    indptr = np.concatenate((np.zeros(1, dtype=np.int64), np.cumsum(sizes)))
    cols = (
        np.concatenate(chunks) if chunks else np.empty(0, dtype=np.int64)
    )
    return row_ids, indptr, cols


def _gather_segments(indptr: np.ndarray, idx: np.ndarray):
    """Indices selecting, for each ``idx[i]``, that CSR row's full segment.

    Returns ``(flat_indices, counts)`` where ``flat_indices`` concatenates
    ``range(indptr[j], indptr[j + 1])`` for every ``j`` in ``idx``.
    """
    counts = indptr[idx + 1] - indptr[idx]
    total = int(counts.sum())
    prefix = np.cumsum(counts) - counts
    offsets = np.arange(total, dtype=np.int64) - np.repeat(prefix, counts)
    return np.repeat(indptr[idx], counts) + offsets, counts


class BooleanMatrix:
    """Row-major sparse boolean matrix (dictionary of column-id sets)."""

    def __init__(self, num_rows: int = 0, num_cols: int = 0) -> None:
        self._rows: Dict[int, Set[int]] = {}
        self.num_rows = num_rows
        self.num_cols = num_cols

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_graph(cls, graph: DiGraph) -> "BooleanMatrix":
        """Adjacency matrix of ``graph`` (rows = sources, cols = destinations)."""
        dimension = (max(graph.nodes()) + 1) if graph.num_nodes else 0
        matrix = cls(num_rows=dimension, num_cols=dimension)
        for src in graph.nodes():
            successors = graph.successors(src)
            if successors:
                matrix._rows[src] = set(successors)
        return matrix

    @classmethod
    def from_entries(
        cls, entries: Iterable[Tuple[int, int]], num_rows: int = 0, num_cols: int = 0
    ) -> "BooleanMatrix":
        """Build a matrix from ``(row, col)`` pairs."""
        matrix = cls(num_rows=num_rows, num_cols=num_cols)
        for row, col in entries:
            matrix.set(row, col)
        return matrix

    @classmethod
    def batch_query_matrix(
        cls, sources: Iterable[int], num_cols: int
    ) -> "BooleanMatrix":
        """The query matrix ``Q`` of a batch of single-source queries.

        Row ``i`` identifies query ``i`` in the batch; the single set
        column in row ``i`` is that query's source node, matching the
        paper's Figure 2.
        """
        matrix = cls(num_rows=0, num_cols=num_cols)
        for row, source in enumerate(sources):
            matrix.set(row, source)
        return matrix

    # ------------------------------------------------------------------
    # Element access
    # ------------------------------------------------------------------
    def set(self, row: int, col: int) -> None:
        """Set entry ``(row, col)`` to true."""
        self._rows.setdefault(row, set()).add(col)
        if row + 1 > self.num_rows:
            self.num_rows = row + 1
        if col + 1 > self.num_cols:
            self.num_cols = col + 1

    def clear(self, row: int, col: int) -> None:
        """Set entry ``(row, col)`` to false (no-op when already false)."""
        cols = self._rows.get(row)
        if cols is None:
            return
        cols.discard(col)
        if not cols:
            del self._rows[row]

    def get(self, row: int, col: int) -> bool:
        """Return entry ``(row, col)``."""
        cols = self._rows.get(row)
        return cols is not None and col in cols

    def row(self, row: int) -> Set[int]:
        """Set columns of ``row`` (empty set if the row is empty).

        The returned set is a copy; mutating it does not change the
        matrix.
        """
        return set(self._rows.get(row, ()))

    def set_row(self, row: int, cols: Iterable[int]) -> None:
        """Replace the contents of ``row`` with ``cols``."""
        cols_set = set(cols)
        if cols_set:
            self._rows[row] = cols_set
            if row + 1 > self.num_rows:
                self.num_rows = row + 1
            max_col = max(cols_set)
            if max_col + 1 > self.num_cols:
                self.num_cols = max_col + 1
        else:
            self._rows.pop(row, None)

    def iter_rows(self) -> Iterator[Tuple[int, Set[int]]]:
        """Iterate over ``(row_id, column_set)`` for non-empty rows."""
        for row, cols in self._rows.items():
            yield row, cols

    def nonzero_rows(self) -> List[int]:
        """Row ids that have at least one entry."""
        return list(self._rows)

    def entries(self) -> Iterator[Tuple[int, int]]:
        """Iterate over all ``(row, col)`` stored entries."""
        for row, cols in self._rows.items():
            for col in cols:
                yield row, col

    @property
    def nnz(self) -> int:
        """Number of stored (true) entries."""
        return sum(len(cols) for cols in self._rows.values())

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def mxm(self, other: "BooleanMatrix") -> "BooleanMatrix":
        """Boolean sparse matrix product ``self x other`` (row-gather)."""
        if self.nnz >= _NUMPY_MXM_THRESHOLD and other._rows:
            return self._mxm_numpy(other)
        product = BooleanMatrix(num_rows=self.num_rows, num_cols=other.num_cols)
        for row, cols in self._rows.items():
            accumulator: Set[int] = set()
            for col in cols:
                other_row = other._rows.get(col)
                if other_row:
                    accumulator |= other_row
            if accumulator:
                product._rows[row] = accumulator
        return product

    def _mxm_numpy(self, other: "BooleanMatrix") -> "BooleanMatrix":
        """Vectorized product: expand every (entry, matching row) pair at
        once, then deduplicate — same sets as the scalar row-gather."""
        product = BooleanMatrix(num_rows=self.num_rows, num_cols=other.num_cols)
        a_rows, a_indptr, a_cols = _csr_of_sets(self._rows)
        b_rows, b_indptr, b_cols = _csr_of_sets(other._rows)
        left_rows = np.repeat(a_rows, np.diff(a_indptr))
        idx = np.searchsorted(b_rows, a_cols)
        idx_clipped = np.minimum(idx, len(b_rows) - 1)
        valid = b_rows[idx_clipped] == a_cols
        if not valid.any():
            return product
        gather, counts = _gather_segments(b_indptr, idx_clipped[valid])
        out_rows = np.repeat(left_rows[valid], counts)
        out_cols = b_cols[gather]
        pairs = np.unique(np.stack((out_rows, out_cols), axis=1), axis=0)
        rows, cols = pairs[:, 0], pairs[:, 1]
        boundaries = np.flatnonzero(np.diff(rows)) + 1
        starts = np.concatenate((np.zeros(1, dtype=np.int64), boundaries))
        for row, chunk in zip(
            rows[starts].tolist(), np.split(cols, boundaries)
        ):
            product._rows[row] = set(chunk.tolist())
        return product

    def element_wise_or(self, other: "BooleanMatrix") -> "BooleanMatrix":
        """Element-wise union (used to accumulate reachability over hops)."""
        result = BooleanMatrix(
            num_rows=max(self.num_rows, other.num_rows),
            num_cols=max(self.num_cols, other.num_cols),
        )
        for row, cols in self._rows.items():
            result._rows[row] = set(cols)
        for row, cols in other._rows.items():
            result._rows.setdefault(row, set()).update(cols)
        return result

    def transpose(self) -> "BooleanMatrix":
        """Return the transposed matrix."""
        transposed = BooleanMatrix(num_rows=self.num_cols, num_cols=self.num_rows)
        for row, cols in self._rows.items():
            for col in cols:
                transposed.set(col, row)
        return transposed

    def equals(self, other: "BooleanMatrix") -> bool:
        """Structural equality of stored entries (shape metadata ignored)."""
        mine = {row: cols for row, cols in self._rows.items() if cols}
        theirs = {row: cols for row, cols in other._rows.items() if cols}
        return mine == theirs

    def copy(self) -> "BooleanMatrix":
        """Deep copy."""
        clone = BooleanMatrix(num_rows=self.num_rows, num_cols=self.num_cols)
        for row, cols in self._rows.items():
            clone._rows[row] = set(cols)
        return clone

    def to_dense(self) -> List[List[int]]:
        """Dense 0/1 list-of-lists (testing/debugging aid for small matrices)."""
        dense = [[0] * self.num_cols for _ in range(self.num_rows)]
        for row, cols in self._rows.items():
            for col in cols:
                dense[row][col] = 1
        return dense

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BooleanMatrix):
            return NotImplemented
        return self.equals(other)

    # Mutable container: setting ``__hash__`` to None (rather than a
    # raising method) is what makes ``isinstance(m, Hashable)`` False and
    # keeps set/dict membership failing with the standard unhashable-type
    # TypeError.
    __hash__ = None  # type: ignore[assignment]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BooleanMatrix(shape=({self.num_rows}, {self.num_cols}), "
            f"nnz={self.nnz})"
        )


class SemiringMatrix:
    """General sparse matrix over an arbitrary semiring.

    Stored as a dictionary of dictionaries: ``values[row][col] -> value``.
    Used by the reference evaluator (counting matched paths) and by tests
    that cross-check the boolean fast path.
    """

    def __init__(
        self,
        num_rows: int = 0,
        num_cols: int = 0,
        semiring: Semiring = BOOLEAN,
    ) -> None:
        self._values: Dict[int, Dict[int, object]] = {}
        self.num_rows = num_rows
        self.num_cols = num_cols
        self.semiring = semiring

    @classmethod
    def from_graph(
        cls, graph: DiGraph, semiring: Semiring = COUNTING
    ) -> "SemiringMatrix":
        """Adjacency matrix of ``graph`` with every edge weighted ``one``."""
        dimension = (max(graph.nodes()) + 1) if graph.num_nodes else 0
        matrix = cls(num_rows=dimension, num_cols=dimension, semiring=semiring)
        for src in graph.nodes():
            for dst in graph.successors(src):
                matrix.set(src, dst, semiring.one)
        return matrix

    @classmethod
    def from_boolean(
        cls, matrix: BooleanMatrix, semiring: Semiring = COUNTING
    ) -> "SemiringMatrix":
        """Lift a boolean matrix into ``semiring`` (true entries become ``one``)."""
        lifted = cls(
            num_rows=matrix.num_rows, num_cols=matrix.num_cols, semiring=semiring
        )
        for row, col in matrix.entries():
            lifted.set(row, col, semiring.one)
        return lifted

    def set(self, row: int, col: int, value: object) -> None:
        """Assign ``value`` to entry ``(row, col)`` (zero values are dropped)."""
        if self.semiring.is_zero(value):
            row_values = self._values.get(row)
            if row_values is not None:
                row_values.pop(col, None)
                if not row_values:
                    del self._values[row]
            return
        self._values.setdefault(row, {})[col] = value
        if row + 1 > self.num_rows:
            self.num_rows = row + 1
        if col + 1 > self.num_cols:
            self.num_cols = col + 1

    def get(self, row: int, col: int) -> object:
        """Entry ``(row, col)`` (the semiring zero when not stored)."""
        return self._values.get(row, {}).get(col, self.semiring.zero)

    def row(self, row: int) -> Dict[int, object]:
        """Copy of the stored entries of ``row``."""
        return dict(self._values.get(row, {}))

    def iter_rows(self) -> Iterator[Tuple[int, Dict[int, object]]]:
        """Iterate over non-empty rows."""
        for row, values in self._values.items():
            yield row, values

    @property
    def nnz(self) -> int:
        """Number of stored entries."""
        return sum(len(values) for values in self._values.values())

    def mxm(self, other: "SemiringMatrix") -> "SemiringMatrix":
        """Semiring matrix product ``self x other``."""
        if self.semiring is not other.semiring:
            raise ValueError(
                "cannot multiply matrices over different semirings: "
                f"{self.semiring.name} vs {other.semiring.name}"
            )
        semiring = self.semiring
        if (
            semiring.np_add is not None
            and semiring.np_multiply is not None
            and other._values
            and self.nnz >= _NUMPY_MXM_THRESHOLD
        ):
            fast = self._mxm_numpy(other)
            if fast is not None:
                return fast
        product = SemiringMatrix(
            num_rows=self.num_rows, num_cols=other.num_cols, semiring=semiring
        )
        for row, row_values in self._values.items():
            accumulator: Dict[int, object] = {}
            for mid, left_value in row_values.items():
                other_row = other._values.get(mid)
                if not other_row:
                    continue
                for col, right_value in other_row.items():
                    contribution = semiring.multiply(left_value, right_value)
                    if col in accumulator:
                        accumulator[col] = semiring.add(
                            accumulator[col], contribution
                        )
                    else:
                        accumulator[col] = contribution
            for col, value in accumulator.items():
                if not semiring.is_zero(value):
                    product._values.setdefault(row, {})[col] = value
        return product

    def _mxm_numpy(self, other: "SemiringMatrix") -> Optional["SemiringMatrix"]:
        """Ufunc product over the semiring's numpy mirrors.

        Returns ``None`` whenever exactness over python scalars cannot be
        guaranteed — object dtypes, integer magnitudes that could
        overflow int64, or integers a float promotion would round — and
        the caller then runs the scalar path, which is always exact.
        """
        semiring = self.semiring
        a_entries = [
            (row, mid, value)
            for row, row_values in self._values.items()
            for mid, value in row_values.items()
        ]
        b_row_ids = np.asarray(sorted(other._values), dtype=np.int64)
        b_sizes = np.asarray(
            [len(other._values[int(row)]) for row in b_row_ids], dtype=np.int64
        )
        b_indptr = np.concatenate(
            (np.zeros(1, dtype=np.int64), np.cumsum(b_sizes))
        )
        b_cols = np.asarray(
            [
                col
                for row in b_row_ids
                for col in other._values[int(row)]
            ],
            dtype=np.int64,
        )
        left_values = np.asarray([entry[2] for entry in a_entries])
        right_values = np.asarray(
            [
                value
                for row in b_row_ids
                for value in other._values[int(row)].values()
            ]
        )
        if left_values.dtype.kind not in "biuf":
            return None
        if right_values.dtype.kind not in "biuf":
            return None
        if not self._exact_over(left_values, right_values, a_entries, other):
            return None

        left_rows = np.asarray([entry[0] for entry in a_entries], dtype=np.int64)
        left_mids = np.asarray([entry[1] for entry in a_entries], dtype=np.int64)
        idx = np.searchsorted(b_row_ids, left_mids)
        idx_clipped = np.minimum(idx, len(b_row_ids) - 1)
        valid = b_row_ids[idx_clipped] == left_mids
        product = SemiringMatrix(
            num_rows=self.num_rows, num_cols=other.num_cols, semiring=semiring
        )
        if not valid.any():
            return product
        gather, counts = _gather_segments(b_indptr, idx_clipped[valid])
        contributions = semiring.np_multiply(
            np.repeat(left_values[valid], counts), right_values[gather]
        )
        out_rows = np.repeat(left_rows[valid], counts)
        out_cols = b_cols[gather]
        # Group by (row, col) and fold each group with the add ufunc.
        order = np.lexsort((out_cols, out_rows))
        out_rows, out_cols = out_rows[order], out_cols[order]
        contributions = contributions[order]
        new_group = (np.diff(out_rows) != 0) | (np.diff(out_cols) != 0)
        starts = np.concatenate(
            (np.zeros(1, dtype=np.int64), np.flatnonzero(new_group) + 1)
        )
        reduced = semiring.np_add.reduceat(contributions, starts)
        keep = reduced != semiring.zero
        for row, col, value in zip(
            out_rows[starts][keep].tolist(),
            out_cols[starts][keep].tolist(),
            reduced[keep].tolist(),
        ):
            product._values.setdefault(row, {})[col] = value
        return product

    def _exact_over(self, left_values, right_values, a_entries, other) -> bool:
        """Whether int64/float64 arithmetic reproduces python scalars."""
        kinds = {left_values.dtype.kind, right_values.dtype.kind}
        if kinds <= {"b"}:
            return True
        if "f" in kinds:
            # A float promotion rounds integers past 2**53; scan the
            # original python values for any such integer.
            for _, _, value in a_entries:
                if isinstance(value, int) and abs(value) > _FLOAT64_EXACT_INT:
                    return False
            for row_values in other._values.values():
                for value in row_values.values():
                    if isinstance(value, int) and abs(value) > _FLOAT64_EXACT_INT:
                        return False
            return True
        # Pure integers: bound the largest value any contribution or fold
        # could reach (python ints in the check, so the check can't
        # overflow).  ``total`` over-approximates the fold length.
        max_left = int(np.abs(left_values).max()) if len(left_values) else 0
        max_right = int(np.abs(right_values).max()) if len(right_values) else 0
        if self.semiring.np_multiply is np.multiply:
            bound = max_left * max_right
        else:
            bound = max_left + max_right
        if self.semiring.np_add is np.add:
            # One output cell folds at most one contribution per stored
            # entry of ``self`` (a gross but cheap over-approximation).
            bound *= max(1, len(left_values))
        return bound <= _INT64_SAFE_BOUND

    def to_boolean(self) -> BooleanMatrix:
        """Structural (non-zero pattern) projection to a boolean matrix."""
        pattern = BooleanMatrix(num_rows=self.num_rows, num_cols=self.num_cols)
        for row, values in self._values.items():
            for col in values:
                pattern.set(row, col)
        return pattern

    def total(self) -> object:
        """Semiring sum of every stored entry (e.g. total matched paths)."""
        result = self.semiring.zero
        for values in self._values.values():
            for value in values.values():
                result = self.semiring.add(result, value)
        return result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SemiringMatrix(shape=({self.num_rows}, {self.num_cols}), "
            f"nnz={self.nnz}, semiring={self.semiring.name!r})"
        )


def khop_reachability(
    adjacency: BooleanMatrix,
    sources: Iterable[int],
    hops: int,
    accumulate: bool = False,
) -> BooleanMatrix:
    """Reference k-hop evaluation: ``Q x Adj x ... x Adj`` (``hops`` times).

    Parameters
    ----------
    adjacency:
        The graph's adjacency matrix.
    sources:
        Source node per query; row ``i`` of the result corresponds to the
        ``i``-th source.
    hops:
        Number of adjacency multiplications (``k`` in the paper).
    accumulate:
        When true, the result is the union of destinations reachable in
        1..k hops rather than exactly k hops.  The paper's k-hop query
        uses exact-k semantics; the accumulating variant supports
        RPQ expressions with bounded repetition such as ``a{1,3}``.
    """
    frontier = BooleanMatrix.batch_query_matrix(sources, adjacency.num_cols)
    if hops < 0:
        raise ValueError("hops must be non-negative")
    accumulated = BooleanMatrix(
        num_rows=frontier.num_rows, num_cols=adjacency.num_cols
    )
    for _ in range(hops):
        frontier = frontier.mxm(adjacency)
        if accumulate:
            accumulated = accumulated.element_wise_or(frontier)
    return accumulated if accumulate else frontier
