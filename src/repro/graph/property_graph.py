"""Property graph model.

Graph databases use the property graph model (Angles 2018): nodes and
directed edges carry a label plus arbitrary property/value pairs.  The
paper strips non-essential features for path matching and works on the
adjacency structure only; this module keeps the full model so that the
examples (e.g. the routing-connection graph of the paper's Figure 2) can
be expressed naturally, and exposes a cheap projection to
:class:`~repro.graph.digraph.DiGraph` for the query engines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.graph.digraph import DEFAULT_LABEL, DiGraph


@dataclass
class NodeRecord:
    """A node of a property graph.

    Attributes
    ----------
    node_id:
        Integer identifier, unique within the graph.
    label:
        Node label (entity type), e.g. ``"Router"`` or ``"Person"``.
    properties:
        Arbitrary property/value pairs, e.g. ``{"ip": "127.0.0.2"}``.
    """

    node_id: int
    label: str = ""
    properties: Dict[str, Any] = field(default_factory=dict)


@dataclass
class EdgeRecord:
    """A directed edge of a property graph."""

    src: int
    dst: int
    label: str = ""
    properties: Dict[str, Any] = field(default_factory=dict)


class PropertyGraph:
    """A labeled property graph with projection to the matching substrate.

    The class maintains both the rich records (labels, properties) and a
    plain :class:`DiGraph` adjacency used for path matching.  Edge labels
    are interned to small integers so that the RPQ automaton can match on
    them cheaply; the mapping is exposed via :meth:`edge_label_id` and
    :meth:`edge_label_name`.
    """

    def __init__(self) -> None:
        self._nodes: Dict[int, NodeRecord] = {}
        self._edges: Dict[Tuple[int, int], EdgeRecord] = {}
        self._adjacency = DiGraph()
        self._label_ids: Dict[str, int] = {"": DEFAULT_LABEL}
        self._label_names: Dict[int, str] = {DEFAULT_LABEL: ""}

    # ------------------------------------------------------------------
    # Label interning
    # ------------------------------------------------------------------
    def edge_label_id(self, label: str) -> int:
        """Return (allocating if needed) the integer id for ``label``."""
        if label not in self._label_ids:
            label_id = len(self._label_ids)
            self._label_ids[label] = label_id
            self._label_names[label_id] = label
        return self._label_ids[label]

    def edge_label_name(self, label_id: int) -> str:
        """Return the string label for ``label_id``."""
        return self._label_names[label_id]

    @property
    def edge_labels(self) -> List[str]:
        """All edge label strings registered so far."""
        return list(self._label_ids)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_node(
        self,
        node_id: int,
        label: str = "",
        properties: Optional[Dict[str, Any]] = None,
    ) -> NodeRecord:
        """Add (or update) a node and return its record."""
        record = self._nodes.get(node_id)
        if record is None:
            record = NodeRecord(node_id=node_id, label=label,
                                properties=dict(properties or {}))
            self._nodes[node_id] = record
            self._adjacency.add_node(node_id)
        else:
            if label:
                record.label = label
            if properties:
                record.properties.update(properties)
        return record

    def add_edge(
        self,
        src: int,
        dst: int,
        label: str = "",
        properties: Optional[Dict[str, Any]] = None,
    ) -> EdgeRecord:
        """Add (or update) the directed edge ``src -> dst``."""
        self.add_node(src)
        self.add_node(dst)
        record = EdgeRecord(src=src, dst=dst, label=label,
                            properties=dict(properties or {}))
        self._edges[(src, dst)] = record
        self._adjacency.add_edge(src, dst, self.edge_label_id(label))
        return record

    def remove_edge(self, src: int, dst: int) -> bool:
        """Remove edge ``src -> dst``; return ``True`` if it existed."""
        existed = self._edges.pop((src, dst), None) is not None
        self._adjacency.remove_edge(src, dst)
        return existed

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def node(self, node_id: int) -> NodeRecord:
        """Return the record of ``node_id`` (raises ``KeyError`` if absent)."""
        return self._nodes[node_id]

    def has_node(self, node_id: int) -> bool:
        """Return whether ``node_id`` exists."""
        return node_id in self._nodes

    def edge(self, src: int, dst: int) -> EdgeRecord:
        """Return the record of edge ``src -> dst``."""
        return self._edges[(src, dst)]

    def has_edge(self, src: int, dst: int) -> bool:
        """Return whether edge ``src -> dst`` exists."""
        return (src, dst) in self._edges

    def nodes(self) -> Iterator[NodeRecord]:
        """Iterate over node records."""
        return iter(self._nodes.values())

    def edges(self) -> Iterator[EdgeRecord]:
        """Iterate over edge records."""
        return iter(self._edges.values())

    def find_nodes(self, **property_filters: Any) -> List[NodeRecord]:
        """Return nodes whose properties match all ``property_filters``.

        This supports the batch-query idiom of the paper's Figure 2
        (``UNWIND [...] AS ipAddr MATCH ({ip: ipAddr})-[2]->(t)``): the
        caller resolves property values to node ids, then issues a batch
        k-hop query from those ids.
        """
        matches = []
        for record in self._nodes.values():
            if all(record.properties.get(key) == value
                   for key, value in property_filters.items()):
                matches.append(record)
        return matches

    @property
    def num_nodes(self) -> int:
        """Number of nodes."""
        return len(self._nodes)

    @property
    def num_edges(self) -> int:
        """Number of edges."""
        return len(self._edges)

    # ------------------------------------------------------------------
    # Projection
    # ------------------------------------------------------------------
    def adjacency(self) -> DiGraph:
        """The underlying :class:`DiGraph` used for path matching.

        The returned object is the live adjacency (not a copy); mutate the
        property graph through :meth:`add_edge` / :meth:`remove_edge` to
        keep the two views consistent.
        """
        return self._adjacency

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PropertyGraph(num_nodes={self.num_nodes}, "
            f"num_edges={self.num_edges})"
        )
