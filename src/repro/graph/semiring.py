"""Semirings for GraphBLAS-style matrix operations.

The GraphBLAS framework (Kepner et al. 2015) expresses graph algorithms
as sparse matrix operations over a semiring ``(add, multiply, zero)``.
RedisGraph — the paper's baseline — evaluates path queries this way, and
Moctopus borrows the same matrix-based execution plan so that path
matching maps naturally onto parallel PIM modules.

Only a handful of semirings matter for path matching:

* :data:`BOOLEAN` (logical OR / AND) — reachability, the paper's k-hop
  query semantics where ``ans = Q x Adj x ... x Adj`` records which
  destinations are reachable.
* :data:`COUNTING` (plus / times) — number of distinct matched paths,
  used by tests and by the evaluation to reason about result-set growth
  (the paper observes that matched paths explode with k on non-road
  graphs, which shifts the bottleneck to CPC and reduction).
* :data:`MIN_PLUS` (min / plus) — shortest path length; included because
  it is a one-line extension once the semiring abstraction exists and it
  powers one of the example applications.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

import numpy as np


@dataclass(frozen=True)
class Semiring:
    """An algebraic semiring for sparse matrix products.

    Attributes
    ----------
    name:
        Human-readable name, used in plan explanations.
    add:
        Commutative, associative accumulation operator.
    multiply:
        Combination operator applied to pairs of matched entries.
    zero:
        Identity of ``add``; entries equal to ``zero`` are never stored.
    one:
        Identity of ``multiply``; used when expanding an unweighted edge.
    np_add / np_multiply:
        numpy ufunc mirrors of ``add`` / ``multiply``, enabling the
        vectorized ``mxm`` fast path of
        :class:`~repro.graph.matrix.SemiringMatrix`.  ``None`` (e.g. for
        a user-defined semiring over exotic values) keeps every product
        on the scalar path; when set, the ufuncs must agree with the
        scalar operators on every representable value, because the fast
        path is required to be result-identical.
    """

    name: str
    add: Callable[[Any, Any], Any]
    multiply: Callable[[Any, Any], Any]
    zero: Any
    one: Any
    np_add: Optional[np.ufunc] = None
    np_multiply: Optional[np.ufunc] = None

    def is_zero(self, value: Any) -> bool:
        """Return whether ``value`` is the additive identity."""
        return value == self.zero


def _logical_or(left: bool, right: bool) -> bool:
    return bool(left or right)


def _logical_and(left: bool, right: bool) -> bool:
    return bool(left and right)


#: Reachability semiring: entries are booleans, OR accumulates, AND combines.
BOOLEAN = Semiring(
    name="boolean",
    add=_logical_or,
    multiply=_logical_and,
    zero=False,
    one=True,
    np_add=np.logical_or,
    np_multiply=np.logical_and,
)

#: Path-counting semiring: entries count the number of matched paths.
COUNTING = Semiring(
    name="counting",
    add=lambda left, right: left + right,
    multiply=lambda left, right: left * right,
    zero=0,
    one=1,
    np_add=np.add,
    np_multiply=np.multiply,
)

#: Shortest-path semiring: entries are path lengths, min accumulates.
MIN_PLUS = Semiring(
    name="min_plus",
    add=min,
    multiply=lambda left, right: left + right,
    zero=float("inf"),
    one=0,
    np_add=np.minimum,
    np_multiply=np.add,
)

#: Registry used by plan serialisation and the CLI-style benchmark output.
SEMIRINGS = {
    semiring.name: semiring for semiring in (BOOLEAN, COUNTING, MIN_PLUS)
}


def get_semiring(name: str) -> Semiring:
    """Look up a semiring by name.

    Raises
    ------
    KeyError
        If ``name`` is not one of the registered semirings.
    """
    if name not in SEMIRINGS:
        raise KeyError(
            f"unknown semiring {name!r}; available: {sorted(SEMIRINGS)}"
        )
    return SEMIRINGS[name]
