"""Edge-list input/output.

SNAP distributes graphs as whitespace-separated edge lists with ``#``
comment headers.  These helpers read and write that format so users who
*do* have the original SNAP files can run the reproduction on the real
graphs, and so that generated stand-ins can be cached on disk between
benchmark runs.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator, Tuple, Union

from repro.graph.digraph import DiGraph

PathLike = Union[str, Path]


def iter_edge_list(path: PathLike) -> Iterator[Tuple[int, int]]:
    """Yield ``(src, dst)`` pairs from a SNAP-style edge list file.

    Lines starting with ``#`` are comments; blank lines are skipped.
    Each data line must contain at least two whitespace-separated integer
    fields (additional fields, e.g. timestamps, are ignored).
    """
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            fields = stripped.split()
            if len(fields) < 2:
                raise ValueError(
                    f"{path}:{line_number}: expected at least two fields, "
                    f"got {stripped!r}"
                )
            yield int(fields[0]), int(fields[1])


def read_edge_list(path: PathLike) -> DiGraph:
    """Load a directed graph from a SNAP-style edge list file."""
    return DiGraph.from_edges(iter_edge_list(path))


def write_edge_list(
    graph: DiGraph, path: PathLike, header: str = ""
) -> int:
    """Write ``graph`` as an edge list; return the number of edges written.

    Parameters
    ----------
    graph:
        Graph to serialise.
    path:
        Destination file path (parent directories must exist).
    header:
        Optional comment text written as ``#``-prefixed lines at the top.
    """
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        if header:
            for line in header.splitlines():
                handle.write(f"# {line}\n")
        handle.write(f"# nodes: {graph.num_nodes} edges: {graph.num_edges}\n")
        for src, dst in graph.edges():
            handle.write(f"{src}\t{dst}\n")
            count += 1
    return count


def write_edges(edges: Iterable[Tuple[int, int]], path: PathLike) -> int:
    """Write raw ``(src, dst)`` pairs to ``path``; return the count."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for src, dst in edges:
            handle.write(f"{src}\t{dst}\n")
            count += 1
    return count
