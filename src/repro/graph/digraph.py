"""Directed graph with adjacency-list storage.

:class:`DiGraph` is the in-memory substrate every engine in this
reproduction builds on.  It is intentionally simple: nodes are integer
identifiers, edges are directed and optionally carry an integer label
(regular path queries match over edge labels).  The structure keeps
out-adjacency per node, maintains degree counts incrementally, and
supports the dynamic workload of the paper (streams of edge insertions
and deletions).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

Edge = Tuple[int, int]
LabeledEdge = Tuple[int, int, int]

#: Default edge label used when the caller does not care about labels
#: (the paper's k-hop workload is label-agnostic).
DEFAULT_LABEL = 0


class DiGraph:
    """A mutable directed graph with optional edge labels.

    The adjacency of each node is stored as an insertion-ordered mapping
    ``dst -> label``.  Insertion order matters to the reproduction: the
    paper's *radical greedy* partitioning heuristic assigns a node
    according to its **first** neighbor, so the order in which edges
    arrived must be observable.

    Parameters
    ----------
    num_nodes:
        Optional number of nodes to pre-register (``0 .. num_nodes - 1``).
        Nodes referenced by later edge insertions are added lazily either
        way.
    """

    def __init__(self, num_nodes: int = 0) -> None:
        self._adj: Dict[int, Dict[int, int]] = {}
        self._in_degree: Dict[int, int] = {}
        self._num_edges = 0
        for node in range(num_nodes):
            self.add_node(node)

    # ------------------------------------------------------------------
    # Node operations
    # ------------------------------------------------------------------
    def add_node(self, node: int) -> bool:
        """Register ``node``; return ``True`` if it was new."""
        if node in self._adj:
            return False
        self._adj[node] = {}
        self._in_degree.setdefault(node, 0)
        return True

    def has_node(self, node: int) -> bool:
        """Return whether ``node`` exists in the graph."""
        return node in self._adj

    def remove_node(self, node: int) -> None:
        """Remove ``node`` and every edge incident to it.

        Removing a node that does not exist raises :class:`KeyError`,
        mirroring dictionary semantics.
        """
        out_neighbors = list(self._adj[node])
        for dst in out_neighbors:
            self.remove_edge(node, dst)
        # Remove incoming edges by scanning all sources; acceptable for the
        # rare node-removal path (the paper's workload is edge-centric).
        for src in list(self._adj):
            if node in self._adj[src]:
                self.remove_edge(src, node)
        del self._adj[node]
        self._in_degree.pop(node, None)

    def nodes(self) -> Iterator[int]:
        """Iterate over node identifiers in insertion order."""
        return iter(self._adj)

    @property
    def num_nodes(self) -> int:
        """Number of registered nodes."""
        return len(self._adj)

    # ------------------------------------------------------------------
    # Edge operations
    # ------------------------------------------------------------------
    def add_edge(self, src: int, dst: int, label: int = DEFAULT_LABEL) -> bool:
        """Insert the directed edge ``src -> dst``.

        Returns ``True`` if the edge was new, ``False`` if it already
        existed (in which case only the label is refreshed).  Endpoints
        are registered lazily, matching the paper's model where a node's
        existence is implied by the first edge that mentions it.
        """
        self.add_node(src)
        self.add_node(dst)
        row = self._adj[src]
        if dst in row:
            row[dst] = label
            return False
        row[dst] = label
        self._in_degree[dst] = self._in_degree.get(dst, 0) + 1
        self._num_edges += 1
        return True

    def remove_edge(self, src: int, dst: int) -> bool:
        """Delete the edge ``src -> dst``; return ``True`` if it existed."""
        row = self._adj.get(src)
        if row is None or dst not in row:
            return False
        del row[dst]
        self._in_degree[dst] -= 1
        self._num_edges -= 1
        return True

    def has_edge(self, src: int, dst: int) -> bool:
        """Return whether the edge ``src -> dst`` exists."""
        row = self._adj.get(src)
        return row is not None and dst in row

    def edge_label(self, src: int, dst: int) -> Optional[int]:
        """Return the label of edge ``src -> dst`` or ``None`` if absent."""
        row = self._adj.get(src)
        if row is None:
            return None
        return row.get(dst)

    def edges(self) -> Iterator[Edge]:
        """Iterate over ``(src, dst)`` pairs in insertion order."""
        for src, row in self._adj.items():
            for dst in row:
                yield (src, dst)

    def labeled_edges(self) -> Iterator[LabeledEdge]:
        """Iterate over ``(src, dst, label)`` triples in insertion order."""
        for src, row in self._adj.items():
            for dst, label in row.items():
                yield (src, dst, label)

    @property
    def num_edges(self) -> int:
        """Number of directed edges."""
        return self._num_edges

    # ------------------------------------------------------------------
    # Neighborhood access
    # ------------------------------------------------------------------
    def successors(self, node: int) -> List[int]:
        """Next-hop node identifiers of ``node`` in insertion order."""
        row = self._adj.get(node)
        if row is None:
            return []
        return list(row)

    def successors_with_labels(self, node: int) -> List[Tuple[int, int]]:
        """Next hops of ``node`` as ``(dst, label)`` pairs."""
        row = self._adj.get(node)
        if row is None:
            return []
        return list(row.items())

    def first_neighbor(self, node: int) -> Optional[int]:
        """The first neighbor ever inserted for ``node`` (or ``None``).

        The radical greedy partitioner assigns a new node to the partition
        of its first neighbor, so this accessor is part of the public
        surface rather than an implementation detail.
        """
        row = self._adj.get(node)
        if not row:
            return None
        return next(iter(row))

    def out_degree(self, node: int) -> int:
        """Number of outgoing edges of ``node`` (0 for unknown nodes)."""
        row = self._adj.get(node)
        return 0 if row is None else len(row)

    def in_degree(self, node: int) -> int:
        """Number of incoming edges of ``node`` (0 for unknown nodes)."""
        return self._in_degree.get(node, 0)

    def degree_histogram(self) -> Dict[int, int]:
        """Mapping ``out_degree -> number of nodes`` with that degree."""
        histogram: Dict[int, int] = {}
        for node in self._adj:
            degree = len(self._adj[node])
            histogram[degree] = histogram.get(degree, 0) + 1
        return histogram

    def high_degree_nodes(self, threshold: int) -> Set[int]:
        """Nodes whose out-degree strictly exceeds ``threshold``.

        The paper classifies nodes with out-degree exceeding 16 as
        high-degree; the threshold is a parameter here so the labor
        division ablation can sweep it.
        """
        return {node for node, row in self._adj.items() if len(row) > threshold}

    def high_degree_fraction(self, threshold: int) -> float:
        """Fraction of nodes that are high-degree under ``threshold``."""
        if not self._adj:
            return 0.0
        return len(self.high_degree_nodes(threshold)) / len(self._adj)

    # ------------------------------------------------------------------
    # Bulk construction / conversion helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(cls, edges: Iterable[Edge], num_nodes: int = 0) -> "DiGraph":
        """Build a graph from an iterable of ``(src, dst)`` pairs."""
        graph = cls(num_nodes=num_nodes)
        for src, dst in edges:
            graph.add_edge(src, dst)
        return graph

    @classmethod
    def from_labeled_edges(
        cls, edges: Iterable[LabeledEdge], num_nodes: int = 0
    ) -> "DiGraph":
        """Build a graph from an iterable of ``(src, dst, label)`` triples."""
        graph = cls(num_nodes=num_nodes)
        for src, dst, label in edges:
            graph.add_edge(src, dst, label)
        return graph

    def copy(self) -> "DiGraph":
        """Return a deep copy of this graph."""
        clone = DiGraph()
        for node in self._adj:
            clone.add_node(node)
        for src, dst, label in self.labeled_edges():
            clone.add_edge(src, dst, label)
        return clone

    def reverse(self) -> "DiGraph":
        """Return a new graph with every edge direction flipped."""
        reversed_graph = DiGraph()
        for node in self._adj:
            reversed_graph.add_node(node)
        for src, dst, label in self.labeled_edges():
            reversed_graph.add_edge(dst, src, label)
        return reversed_graph

    def __contains__(self, node: int) -> bool:
        return node in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DiGraph(num_nodes={self.num_nodes}, num_edges={self.num_edges})"
        )
