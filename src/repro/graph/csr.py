"""Compressed sparse row (CSR) adjacency.

RedisGraph stores its adjacency matrices in SuiteSparse:GraphBLAS
compressed formats; the baseline engine in this reproduction mirrors
that with an immutable CSR built from a :class:`DiGraph`.  CSR gives the
baseline its realistic cost profile: row offsets and column indices live
in contiguous arrays, so scanning one row is sequential, but following a
path hops between unrelated rows — the random-access pattern the paper's
"memory wall" argument is about.

The structure is also reused by partition-quality metrics, which need
fast neighbor iteration over frozen graphs.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

import numpy as np

from repro.graph.digraph import DiGraph


class CSRMatrix:
    """Immutable CSR representation of a directed graph's adjacency."""

    def __init__(self, indptr: Sequence[int], indices: Sequence[int]) -> None:
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        if self.indptr.ndim != 1 or self.indices.ndim != 1:
            raise ValueError("indptr and indices must be one-dimensional")
        if len(self.indptr) == 0 or self.indptr[0] != 0:
            raise ValueError("indptr must start with 0")
        if self.indptr[-1] != len(self.indices):
            raise ValueError("indptr must end with len(indices)")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_graph(cls, graph: DiGraph) -> "CSRMatrix":
        """Freeze ``graph`` into CSR form.

        Rows are indexed by node id; ids must therefore be reasonably
        dense (the generators and datasets in this package guarantee
        that).
        """
        num_rows = (max(graph.nodes()) + 1) if graph.num_nodes else 0
        indptr: List[int] = [0]
        indices: List[int] = []
        for row in range(num_rows):
            successors = graph.successors(row) if graph.has_node(row) else []
            indices.extend(sorted(successors))
            indptr.append(len(indices))
        return cls(indptr, indices)

    @classmethod
    def from_edges(cls, edges: Iterable[Tuple[int, int]]) -> "CSRMatrix":
        """Freeze an edge iterable into CSR form."""
        return cls.from_graph(DiGraph.from_edges(edges))

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    @property
    def num_rows(self) -> int:
        """Number of rows (nodes)."""
        return len(self.indptr) - 1

    @property
    def nnz(self) -> int:
        """Number of stored entries (edges)."""
        return int(self.indptr[-1])

    def row(self, row: int) -> np.ndarray:
        """Column indices of ``row`` as a numpy view (sorted)."""
        start, end = int(self.indptr[row]), int(self.indptr[row + 1])
        return self.indices[start:end]

    def row_length(self, row: int) -> int:
        """Out-degree of ``row``."""
        return int(self.indptr[row + 1] - self.indptr[row])

    def has_entry(self, row: int, col: int) -> bool:
        """Whether edge ``row -> col`` is present (binary search)."""
        row_cols = self.row(row)
        position = int(np.searchsorted(row_cols, col))
        return position < len(row_cols) and int(row_cols[position]) == col

    def out_degrees(self) -> np.ndarray:
        """Vector of out-degrees."""
        return np.diff(self.indptr)

    # ------------------------------------------------------------------
    # Frontier expansion (the baseline's hot loop)
    # ------------------------------------------------------------------
    def expand_frontier(self, frontier: Iterable[int]) -> Tuple[np.ndarray, int]:
        """Union of next hops of ``frontier`` plus the number of rows gathered.

        Returns
        -------
        (destinations, rows_touched):
            ``destinations`` is a sorted, deduplicated numpy array of next
            hops; ``rows_touched`` counts how many adjacency rows were
            fetched, which the host cost model uses to charge random DRAM
            accesses.
        """
        gathered: List[np.ndarray] = []
        rows_touched = 0
        for node in frontier:
            if 0 <= node < self.num_rows:
                row_cols = self.row(node)
                rows_touched += 1
                if len(row_cols):
                    gathered.append(row_cols)
        if not gathered:
            return np.empty(0, dtype=np.int64), rows_touched
        return np.unique(np.concatenate(gathered)), rows_touched
