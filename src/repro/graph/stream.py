"""Update streams: dynamic-graph workloads for insertion and deletion.

The paper's graph-update experiment (Figure 6) inserts 64 K randomly
selected new edges and deletes 64 K randomly selected existing edges.
:class:`UpdateStream` produces such batches deterministically, and
:class:`EdgeStreamReplayer` replays an edge list as an insertion stream,
which is how dynamic graph databases ingest data and how the radical
greedy partitioner sees the graph (one edge at a time, first edge of a
node decides its partition).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from enum import Enum
from typing import Iterator, List, Sequence, Tuple

from repro.graph.digraph import DiGraph

Edge = Tuple[int, int]


class UpdateKind(Enum):
    """Type of a graph update operation."""

    INSERT = "insert"
    DELETE = "delete"


@dataclass(frozen=True)
class UpdateOp:
    """A single edge-level update."""

    kind: UpdateKind
    src: int
    dst: int

    @property
    def edge(self) -> Edge:
        """The ``(src, dst)`` pair the update refers to."""
        return (self.src, self.dst)


class UpdateStream:
    """Deterministic generator of insertion/deletion batches for a graph.

    Parameters
    ----------
    graph:
        The graph the updates apply to.  The stream never mutates it; it
        only samples node ids and existing edges from it.
    seed:
        RNG seed for reproducible batches.
    """

    def __init__(self, graph: DiGraph, seed: int = 0) -> None:
        self._graph = graph
        self._rng = random.Random(seed)

    def insertion_batch(self, count: int) -> List[UpdateOp]:
        """``count`` insertions of edges that do not currently exist.

        Endpoints are sampled uniformly from existing nodes; a small
        fraction of brand-new node ids is mixed in so that the
        partitioner's new-node path is exercised, as in a growing graph.
        """
        nodes = list(self._graph.nodes())
        if not nodes:
            raise ValueError("cannot build an insertion batch for an empty graph")
        max_node = max(nodes)
        batch: List[UpdateOp] = []
        attempts = 0
        while len(batch) < count and attempts < count * 20:
            attempts += 1
            if self._rng.random() < 0.05:
                src = max_node + 1 + self._rng.randrange(count)
            else:
                src = nodes[self._rng.randrange(len(nodes))]
            dst = nodes[self._rng.randrange(len(nodes))]
            if src == dst or self._graph.has_edge(src, dst):
                continue
            batch.append(UpdateOp(UpdateKind.INSERT, src, dst))
        return batch

    def deletion_batch(self, count: int) -> List[UpdateOp]:
        """``count`` deletions sampled uniformly from existing edges."""
        edges = list(self._graph.edges())
        if not edges:
            return []
        count = min(count, len(edges))
        sample = self._rng.sample(edges, count)
        return [UpdateOp(UpdateKind.DELETE, src, dst) for src, dst in sample]

    def mixed_batch(self, count: int, insert_fraction: float = 0.5) -> List[UpdateOp]:
        """A shuffled mix of insertions and deletions.

        Parameters
        ----------
        count:
            Total number of operations.
        insert_fraction:
            Fraction of the batch that are insertions.
        """
        if not 0.0 <= insert_fraction <= 1.0:
            raise ValueError("insert_fraction must be within [0, 1]")
        num_inserts = int(count * insert_fraction)
        ops = self.insertion_batch(num_inserts)
        ops += self.deletion_batch(count - num_inserts)
        self._rng.shuffle(ops)
        return ops


class EdgeStreamReplayer:
    """Replay a static graph as a stream of edge insertions.

    Streaming partitioners (LDG, radical greedy) make their decisions as
    edges arrive; replaying a generated graph through this class is how
    benchmarks and tests feed them.
    """

    def __init__(self, edges: Sequence[Edge], shuffle_seed: int = -1) -> None:
        self._edges = list(edges)
        if shuffle_seed >= 0:
            random.Random(shuffle_seed).shuffle(self._edges)

    @classmethod
    def from_graph(cls, graph: DiGraph, shuffle_seed: int = -1) -> "EdgeStreamReplayer":
        """Build a replayer from every edge of ``graph``."""
        return cls(list(graph.edges()), shuffle_seed=shuffle_seed)

    def __iter__(self) -> Iterator[UpdateOp]:
        for src, dst in self._edges:
            yield UpdateOp(UpdateKind.INSERT, src, dst)

    def __len__(self) -> int:
        return len(self._edges)

    def edges(self) -> List[Edge]:
        """The edges in replay order."""
        return list(self._edges)
