"""Deterministic synthetic graph generators.

The paper evaluates on 15 real SNAP graphs.  Those graphs are not
shipped with this reproduction (no network access, hundreds of MB), so
this module provides deterministic generators that produce graphs from
the same *structural families*:

* :func:`road_network` — a 2D lattice with small random perturbations.
  Road networks (roadNet-CA/PA/TX) have essentially bounded degree
  (no high-degree nodes), strong spatial locality, and a huge diameter —
  the regime where the paper's Moctopus keeps winning even for long path
  queries (k = 4, 6, 8).
* :func:`power_law_graph` — a preferential-attachment style generator
  with a tunable skew.  Citation, social, communication and web graphs
  (cit-patents, com-youtube, wiki-Talk, email-EuAll, web-*) are highly
  skewed: a small fraction of nodes has out-degree above the paper's
  high-degree threshold of 16, which is what stresses PIM load balance.
* :func:`community_graph` — a planted-partition generator with dense
  communities and sparse inter-community edges, matching the
  co-purchasing and collaboration graphs (com-amazon, com-DBLP,
  amazon0312/0505/0601) where locality-aware partitioning pays off.
* :func:`rmat_graph` — a Kronecker/R-MAT generator kept for completeness
  and for stress tests of the partitioners on adversarially skewed input.

Every generator takes an explicit ``seed`` and uses its own
:class:`random.Random` instance, so dataset construction is reproducible
across processes and Python versions.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Tuple

from repro.graph.digraph import DiGraph

Edge = Tuple[int, int]


def _edges_to_graph(edges: Iterable[Edge], num_nodes: int) -> DiGraph:
    graph = DiGraph(num_nodes=num_nodes)
    for src, dst in edges:
        if src != dst:
            graph.add_edge(src, dst)
    return graph


def road_network(
    rows: int,
    cols: int,
    extra_edge_fraction: float = 0.02,
    seed: int = 0,
) -> DiGraph:
    """Generate a road-network-like directed lattice.

    Each intersection connects to its right and down neighbors in both
    directions (roads are bidirectional), plus a small fraction of random
    "shortcut" edges emulating highways/ramps.  Out-degree is bounded by
    ~4, so the graph has **zero** high-degree nodes under the paper's
    threshold of 16, mirroring roadNet-CA/PA/TX in Table 1.

    Parameters
    ----------
    rows, cols:
        Lattice dimensions; the graph has ``rows * cols`` nodes.
    extra_edge_fraction:
        Number of random shortcut edges as a fraction of node count.
    seed:
        Seed for the shortcut generator.
    """
    rng = random.Random(seed)
    num_nodes = rows * cols
    edges: List[Edge] = []

    def node_id(row: int, col: int) -> int:
        return row * cols + col

    for row in range(rows):
        for col in range(cols):
            current = node_id(row, col)
            if col + 1 < cols:
                right = node_id(row, col + 1)
                edges.append((current, right))
                edges.append((right, current))
            if row + 1 < rows:
                down = node_id(row + 1, col)
                edges.append((current, down))
                edges.append((down, current))

    num_shortcuts = int(num_nodes * extra_edge_fraction)
    for _ in range(num_shortcuts):
        src = rng.randrange(num_nodes)
        dst = rng.randrange(num_nodes)
        if src != dst:
            edges.append((src, dst))
            edges.append((dst, src))

    return _edges_to_graph(edges, num_nodes)


def power_law_graph(
    num_nodes: int,
    edges_per_node: int = 4,
    skew: float = 1.0,
    reciprocity: float = 0.3,
    seed: int = 0,
) -> DiGraph:
    """Generate a skewed graph by preferential attachment.

    New nodes attach ``edges_per_node`` outgoing edges; each target is
    chosen preferentially (proportional to in-degree + 1) with
    probability ``skew`` and uniformly otherwise.  A ``reciprocity``
    fraction of attachments also adds the reverse edge — social and web
    graphs are highly reciprocal, and reciprocity is what gives popular
    nodes a large *out*-degree as well.  Additionally, a fraction of
    *hub* nodes receives a burst of extra outgoing edges so the
    out-degree tail crosses the paper's high-degree threshold of 16; the
    paper's high-degree classification is on out-degree, and load
    imbalance on PIM modules comes from nodes with large next-hop lists.

    Parameters
    ----------
    num_nodes:
        Total number of nodes.
    edges_per_node:
        Outgoing edges attached per newly arriving node.
    skew:
        In ``[0, 1]``; higher values concentrate edges on hubs harder.
    reciprocity:
        Probability that an attachment also adds the reverse edge.
    seed:
        RNG seed.
    """
    if num_nodes < 2:
        raise ValueError("power_law_graph requires at least 2 nodes")
    if not 0.0 <= reciprocity <= 1.0:
        raise ValueError("reciprocity must be within [0, 1]")
    rng = random.Random(seed)
    edges: List[Edge] = []
    # Start from a small seed clique so preferential attachment has targets.
    seed_size = min(edges_per_node + 1, num_nodes)
    targets: List[int] = []
    for src in range(seed_size):
        for dst in range(seed_size):
            if src != dst:
                edges.append((src, dst))
                targets.append(dst)

    for new_node in range(seed_size, num_nodes):
        for _ in range(edges_per_node):
            if targets and rng.random() < skew:
                dst = targets[rng.randrange(len(targets))]
            else:
                dst = rng.randrange(new_node)
            if dst != new_node:
                edges.append((new_node, dst))
                targets.append(dst)
                if rng.random() < reciprocity:
                    edges.append((dst, new_node))

    # Promote a small set of hubs with bursts of outgoing edges so the
    # out-degree tail crosses the paper's high-degree threshold (16).
    num_hubs = max(1, int(num_nodes * 0.02 * skew))
    hub_candidates = rng.sample(range(num_nodes), num_hubs)
    for hub in hub_candidates:
        burst = rng.randint(24, 24 + int(48 * skew))
        for _ in range(burst):
            dst = targets[rng.randrange(len(targets))] if targets else rng.randrange(num_nodes)
            if dst != hub:
                edges.append((hub, dst))

    return _edges_to_graph(edges, num_nodes)


def community_graph(
    num_communities: int,
    community_size: int,
    intra_edges_per_node: int = 5,
    inter_edge_fraction: float = 0.05,
    hub_fraction: float = 0.0,
    seed: int = 0,
) -> DiGraph:
    """Generate a planted-partition ("community") graph.

    Nodes are grouped into ``num_communities`` blocks of
    ``community_size``; most edges stay inside a block (good locality for
    a partitioner to recover), a small fraction crosses blocks.  An
    optional ``hub_fraction`` of nodes receives extra out-edges across the
    whole graph to emulate the moderate skew of collaboration and
    co-purchase graphs.
    """
    rng = random.Random(seed)
    num_nodes = num_communities * community_size
    edges: List[Edge] = []

    for community in range(num_communities):
        base = community * community_size
        for offset in range(community_size):
            src = base + offset
            for _ in range(intra_edges_per_node):
                dst = base + rng.randrange(community_size)
                if dst != src:
                    edges.append((src, dst))

    num_inter = int(num_nodes * inter_edge_fraction)
    for _ in range(num_inter):
        src = rng.randrange(num_nodes)
        dst = rng.randrange(num_nodes)
        if src != dst:
            edges.append((src, dst))

    num_hubs = int(num_nodes * hub_fraction)
    for hub in rng.sample(range(num_nodes), num_hubs) if num_hubs else []:
        burst = rng.randint(20, 60)
        for _ in range(burst):
            dst = rng.randrange(num_nodes)
            if dst != hub:
                edges.append((hub, dst))

    return _edges_to_graph(edges, num_nodes)


def rmat_graph(
    scale: int,
    edge_factor: int = 8,
    probabilities: Tuple[float, float, float, float] = (0.57, 0.19, 0.19, 0.05),
    seed: int = 0,
) -> DiGraph:
    """Generate an R-MAT (recursive matrix) graph.

    R-MAT recursively subdivides the adjacency matrix into quadrants and
    drops each edge into a quadrant with probabilities ``(a, b, c, d)``.
    The default parameters are the Graph500 values and produce heavy
    skew; the generator is primarily used by partitioner stress tests.

    Parameters
    ----------
    scale:
        ``2**scale`` nodes.
    edge_factor:
        Edges per node.
    probabilities:
        Quadrant probabilities ``(a, b, c, d)``; must sum to 1.
    seed:
        RNG seed.
    """
    total = sum(probabilities)
    if abs(total - 1.0) > 1e-9:
        raise ValueError("R-MAT quadrant probabilities must sum to 1")
    rng = random.Random(seed)
    num_nodes = 1 << scale
    num_edges = num_nodes * edge_factor
    a, b, c, _ = probabilities
    edges: List[Edge] = []
    for _ in range(num_edges):
        row, col = 0, 0
        span = num_nodes // 2
        while span >= 1:
            roll = rng.random()
            if roll < a:
                pass
            elif roll < a + b:
                col += span
            elif roll < a + b + c:
                row += span
            else:
                row += span
                col += span
            span //= 2
        if row != col:
            edges.append((row, col))
    return _edges_to_graph(edges, num_nodes)


def random_graph(num_nodes: int, num_edges: int, seed: int = 0) -> DiGraph:
    """Uniform Erdős–Rényi-style random directed graph (testing helper)."""
    rng = random.Random(seed)
    edges: List[Edge] = []
    for _ in range(num_edges):
        src = rng.randrange(num_nodes)
        dst = rng.randrange(num_nodes)
        if src != dst:
            edges.append((src, dst))
    return _edges_to_graph(edges, num_nodes)
