"""Graph substrate: graphs, matrices, generators, datasets and streams.

This subpackage is the foundation every engine in the reproduction
builds on.  Nothing in here knows about PIM or about Moctopus; it is the
"graph database storage and math" layer:

* :class:`DiGraph` / :class:`PropertyGraph` — mutable graph structures;
* :class:`BooleanMatrix` / :class:`SemiringMatrix` / :class:`CSRMatrix` —
  sparse matrices with GraphBLAS-style products;
* :mod:`repro.graph.generators` / :mod:`repro.graph.datasets` — the
  synthetic stand-ins for the paper's 15 SNAP graphs (Table 1);
* :mod:`repro.graph.stream` — insertion/deletion workloads for the
  dynamic-graph experiments (Figure 6).
"""

from repro.graph.digraph import DEFAULT_LABEL, DiGraph
from repro.graph.property_graph import EdgeRecord, NodeRecord, PropertyGraph
from repro.graph.semiring import BOOLEAN, COUNTING, MIN_PLUS, Semiring, get_semiring
from repro.graph.matrix import BooleanMatrix, SemiringMatrix, khop_reachability
from repro.graph.csr import CSRMatrix
from repro.graph.generators import (
    community_graph,
    power_law_graph,
    random_graph,
    rmat_graph,
    road_network,
)
from repro.graph.datasets import (
    DATASETS,
    HIGH_DEGREE_THRESHOLD,
    DatasetSpec,
    dataset_spec,
    dataset_statistics,
    list_datasets,
    load_dataset,
    road_network_specs,
)
from repro.graph.io import iter_edge_list, read_edge_list, write_edge_list
from repro.graph.stream import (
    EdgeStreamReplayer,
    UpdateKind,
    UpdateOp,
    UpdateStream,
)

__all__ = [
    "DEFAULT_LABEL",
    "DiGraph",
    "PropertyGraph",
    "NodeRecord",
    "EdgeRecord",
    "Semiring",
    "BOOLEAN",
    "COUNTING",
    "MIN_PLUS",
    "get_semiring",
    "BooleanMatrix",
    "SemiringMatrix",
    "khop_reachability",
    "CSRMatrix",
    "road_network",
    "power_law_graph",
    "community_graph",
    "rmat_graph",
    "random_graph",
    "DATASETS",
    "HIGH_DEGREE_THRESHOLD",
    "DatasetSpec",
    "dataset_spec",
    "dataset_statistics",
    "list_datasets",
    "load_dataset",
    "road_network_specs",
    "iter_edge_list",
    "read_edge_list",
    "write_edge_list",
    "UpdateStream",
    "UpdateOp",
    "UpdateKind",
    "EdgeStreamReplayer",
]
