"""Runtime lock-order checking: instrumented locks + a global order graph.

The static rules catch lock-discipline bugs whose *shape* is visible in
the AST; this module catches the dynamic ones — inconsistent lock
acquisition orders (potential ABBA deadlocks) and blocking operations
performed while holding a lock — by actually watching the locks at
runtime.

How it works
------------

:func:`install` monkeypatches ``threading.Lock``/``threading.RLock``
with factories returning :class:`InstrumentedLock` wrappers.  Every
wrapper records, per thread, the stack of locks currently held; when a
thread *attempts* a blocking acquire of lock ``B`` while holding lock
``A``, the checker adds the edge ``A -> B`` (with the acquisition
stack) to a global **lock-order graph**.  A cycle in that graph means
two code paths take the same locks in opposite orders — the classic
ABBA deadlock, detected from *observed orderings* without any run
having to actually deadlock.  Recording at attempt time (not success)
also catches the fully contended interleaving where neither nested
acquire ever succeeds because each thread holds what the other wants.

The checker additionally wraps ``threading.Thread.join`` and blocking
``queue.Queue.get``/``put``: performing either while holding an
instrumented lock is recorded as a **hazard** (the dynamic twin of
static rule REP001 — ``close()`` joining its worker under
``_close_lock`` was exactly this).

Locks created *before* :func:`install` stay uninstrumented, so the
checker naturally scopes to objects built inside the checked region.
Wrappers implement the full ``Condition`` integration protocol
(``_release_save``/``_acquire_restore``/``_is_owned``), so
``threading.Condition``, ``threading.Event`` and ``queue.Queue`` built
on instrumented locks behave exactly as before.

Usage
-----

.. code-block:: python

    from repro.analysis.lockcheck import lock_order_checker

    with lock_order_checker() as checker:
        run_concurrent_workload()
    assert checker.cycles() == []
    assert checker.hazards == []

The test suite runs the serving, parallel and net suites under this via
the ``REPRO_LOCKCHECK=1`` fixture in ``tests/conftest.py``; the CI
``analysis`` job sets the variable.
"""

from __future__ import annotations

import _thread
import contextlib
import queue as queue_module
import threading
import traceback
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

#: Frames of context captured per edge/hazard (enough to attribute,
#: cheap enough to take on every nested acquisition).
_STACK_DEPTH = 12


def _capture_stack() -> str:
    frames = traceback.extract_stack(limit=_STACK_DEPTH + 4)[:-3]
    return "".join(traceback.format_list(frames))


def _creation_site() -> str:
    """File:line of the lock's creation (skipping this module's frames)."""
    for frame in reversed(traceback.extract_stack()):
        filename = frame.filename
        if "lockcheck" in filename or filename.startswith("<"):
            continue
        if filename.endswith(("threading.py", "queue.py")):
            continue
        return f"{filename}:{frame.lineno}"
    return "<unknown>"


@dataclass
class Hazard:
    """One blocking operation performed while holding a lock."""

    kind: str
    held: Tuple[str, ...]
    stack: str

    def render(self) -> str:
        held = ", ".join(self.held)
        return f"{self.kind} while holding [{held}]\n{self.stack}"


@dataclass
class _Edge:
    """One observed ordering: ``src`` held while ``dst`` acquired."""

    src_site: str
    dst_site: str
    stack: str
    count: int = 1


class LockOrderChecker:
    """The global acquisition graph + hazard log of one checked region."""

    def __init__(self) -> None:
        # Raw (never-instrumented) mutex: the checker must not observe
        # itself, and must be usable from inside lock wrappers.
        self._mutex = _thread.allocate_lock()
        self._held = threading.local()
        #: (id(src), id(dst)) -> edge metadata.  Nodes enter the graph
        #: lazily, only when they participate in a nested acquisition —
        #: uncontended single-lock code adds nothing.
        self._edges: Dict[Tuple[int, int], _Edge] = {}
        self._sites: Dict[int, str] = {}
        self.hazards: List[Hazard] = []
        self.locks_created = 0
        self.acquisitions = 0

    # ------------------------------------------------------------------
    # Wrapper callbacks
    # ------------------------------------------------------------------
    def _held_stack(self) -> List["InstrumentedLock"]:
        stack = getattr(self._held, "stack", None)
        if stack is None:
            stack = []
            self._held.stack = stack
        return stack

    def _record_edges(self, lock: "InstrumentedLock") -> None:
        held = self._held_stack()
        if not held:
            return
        stack = _capture_stack()
        with self._mutex:
            for holder in held:
                key = (id(holder), id(lock))
                if key[0] == key[1]:
                    continue
                edge = self._edges.get(key)
                if edge is None:
                    self._sites[id(holder)] = holder.site
                    self._sites[id(lock)] = lock.site
                    self._edges[key] = _Edge(
                        holder.site, lock.site, stack
                    )
                else:
                    edge.count += 1

    def note_attempt(self, lock: "InstrumentedLock") -> None:
        """Record ordering edges for a *blocking* acquisition attempt.

        Edges are recorded before the inner acquire, not after it
        succeeds: in a genuinely contended ABBA interleaving neither
        thread's nested acquire ever succeeds (each holds what the
        other wants), so success-only recording would miss exactly the
        runs that demonstrate the deadlock.  The attempt is what
        establishes the ordering.
        """
        self._record_edges(lock)

    def note_acquired(
        self, lock: "InstrumentedLock", edges_recorded: bool = False
    ) -> None:
        if not edges_recorded:
            # Successful non-blocking trylock: the ordering was real
            # even though a failed trylock would have been harmless.
            self._record_edges(lock)
        with self._mutex:
            self.acquisitions += 1
        self._held_stack().append(lock)

    def note_released(self, lock: "InstrumentedLock") -> None:
        held = self._held_stack()
        # Released in LIFO order almost always; tolerate out-of-order.
        for index in range(len(held) - 1, -1, -1):
            if held[index] is lock:
                del held[index]
                return

    def note_blocking(self, kind: str) -> None:
        """Record a blocking operation if any instrumented lock is held."""
        held = self._held_stack()
        if not held:
            return
        hazard = Hazard(
            kind=kind,
            held=tuple(lock.site for lock in held),
            stack=_capture_stack(),
        )
        with self._mutex:
            self.hazards.append(hazard)

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------
    def cycles(self) -> List[List[str]]:
        """Every elementary cycle of the observed lock-order graph.

        A returned cycle is a list of creation-site names
        ``[A, B, ..., A]`` meaning the program acquired those locks in
        an order that can deadlock if the involved threads interleave.
        Detection is a plain iterative DFS over lock *instances* (two
        locks from the same source line are still distinct nodes), so a
        nested acquisition of two gates created at one site is not a
        false self-cycle.
        """
        with self._mutex:
            adjacency: Dict[int, List[int]] = {}
            for (src, dst) in self._edges:
                adjacency.setdefault(src, []).append(dst)
            sites = dict(self._sites)
        cycles: List[List[str]] = []
        seen_cycles: Set[Tuple[int, ...]] = set()
        visited: Set[int] = set()
        for start in adjacency:
            if start in visited:
                continue
            stack: List[Tuple[int, int]] = [(start, 0)]
            path: List[int] = []
            on_path: Set[int] = set()
            while stack:
                node, edge_index = stack[-1]
                if edge_index == 0:
                    path.append(node)
                    on_path.add(node)
                neighbors = adjacency.get(node, [])
                if edge_index < len(neighbors):
                    stack[-1] = (node, edge_index + 1)
                    neighbor = neighbors[edge_index]
                    if neighbor in on_path:
                        cycle_ids = path[path.index(neighbor):] + [neighbor]
                        canonical = self._canonical(cycle_ids[:-1])
                        if canonical not in seen_cycles:
                            seen_cycles.add(canonical)
                            cycles.append(
                                [sites.get(n, "?") for n in cycle_ids]
                            )
                    elif neighbor not in visited:
                        stack.append((neighbor, 0))
                else:
                    stack.pop()
                    path.pop()
                    on_path.discard(node)
                    visited.add(node)
        return cycles

    @staticmethod
    def _canonical(cycle_ids: List[int]) -> Tuple[int, ...]:
        """Rotation-invariant identity of a cycle."""
        pivot = cycle_ids.index(min(cycle_ids))
        return tuple(cycle_ids[pivot:] + cycle_ids[:pivot])

    def edge_count(self) -> int:
        with self._mutex:
            return len(self._edges)

    def report(self) -> str:
        """Human-readable summary: cycles first, then hazards."""
        lines = [
            f"lock-order checker: {self.locks_created} locks created, "
            f"{self.acquisitions} acquisitions, {self.edge_count()} "
            f"order edges"
        ]
        cycles = self.cycles()
        if cycles:
            lines.append(f"POTENTIAL DEADLOCKS: {len(cycles)} cycle(s)")
            for cycle in cycles:
                lines.append("  cycle: " + " -> ".join(cycle))
                with self._mutex:
                    for (src, dst), edge in self._edges.items():
                        if (
                            edge.src_site in cycle
                            and edge.dst_site in cycle
                        ):
                            lines.append(
                                f"    {edge.src_site} -> {edge.dst_site} "
                                f"(seen {edge.count}x), first at:"
                            )
                            lines.extend(
                                "      " + frame
                                for frame in edge.stack.splitlines()
                            )
        else:
            lines.append("no lock-order cycles observed")
        if self.hazards:
            lines.append(f"HAZARDS: {len(self.hazards)}")
            for hazard in self.hazards:
                lines.append("  " + hazard.kind + " while holding "
                             + ", ".join(hazard.held))
        else:
            lines.append("no lock-held-across-blocking hazards")
        return "\n".join(lines)


class InstrumentedLock:
    """A ``threading.Lock``/``RLock`` stand-in that reports to a checker.

    Implements the full lock protocol *plus* the private hooks
    ``threading.Condition`` probes for (``_release_save``,
    ``_acquire_restore``, ``_is_owned``), so conditions, events and
    queues built on an instrumented lock keep exact stdlib semantics.
    """

    def __init__(
        self, checker: LockOrderChecker, inner, site: str, reentrant: bool
    ) -> None:
        self._checker = checker
        self._inner = inner
        self.site = site
        self._reentrant = reentrant
        self._owner: Optional[int] = None
        self._count = 0

    # -- core lock protocol -------------------------------------------
    def acquire(self, blocking: bool = True, timeout: float = -1):
        me = _thread.get_ident()
        if self._reentrant and self._owner == me:
            acquired = self._inner.acquire(blocking, timeout)
            if acquired:
                self._count += 1
            return acquired
        attempted = False
        if blocking:
            self._checker.note_attempt(self)
            attempted = True
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            self._owner = me
            self._count = 1
            self._checker.note_acquired(self, edges_recorded=attempted)
        return acquired

    def release(self) -> None:
        me = _thread.get_ident()
        if self._reentrant and self._owner == me and self._count > 1:
            self._count -= 1
            self._inner.release()
            return
        # Bookkeeping before the physical release: once the inner lock
        # is free another thread may acquire and re-own this wrapper.
        self._owner = None
        self._count = 0
        self._checker.note_released(self)
        self._inner.release()

    def locked(self) -> bool:
        inner_locked = getattr(self._inner, "locked", None)
        if inner_locked is not None:
            return inner_locked()
        # _thread.RLock grew .locked() only in 3.12; fall back to our
        # ownership bookkeeping on older interpreters.
        return self._owner is not None

    def __enter__(self):
        self.acquire()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "RLock" if self._reentrant else "Lock"
        return f"<Instrumented{kind} {self.site}>"

    # -- threading.Condition integration ------------------------------
    def _is_owned(self) -> bool:
        return self._owner == _thread.get_ident()

    def _release_save(self):
        """Fully release (however deep the RLock count) for a cond wait."""
        count = self._count
        self._owner = None
        self._count = 0
        self._checker.note_released(self)
        if self._reentrant:
            return (count, self._inner._release_save())
        self._inner.release()
        return count

    def _acquire_restore(self, state) -> None:
        self._checker.note_attempt(self)
        if self._reentrant:
            count, inner_state = state
            self._inner._acquire_restore(inner_state)
        else:
            count = state
            self._inner.acquire()
        self._owner = _thread.get_ident()
        self._count = count
        self._checker.note_acquired(self, edges_recorded=True)


# ----------------------------------------------------------------------
# Installation (monkeypatching)
# ----------------------------------------------------------------------
_active: Optional[LockOrderChecker] = None
_saved: Dict[str, object] = {}
_install_mutex = _thread.allocate_lock()


def active_checker() -> Optional[LockOrderChecker]:
    """The currently installed checker (``None`` when not installed)."""
    return _active


def install(checker: Optional[LockOrderChecker] = None) -> LockOrderChecker:
    """Patch ``threading``/``queue`` so new locks are instrumented.

    Returns the active checker.  Nested installs are rejected — the
    graph is global state and two checked regions must not interleave.
    """
    global _active
    with _install_mutex:
        if _active is not None:
            raise RuntimeError("lock-order checker already installed")
        checker = checker or LockOrderChecker()
        _saved["Lock"] = threading.Lock
        _saved["RLock"] = threading.RLock
        _saved["Thread.join"] = threading.Thread.join
        _saved["Queue.get"] = queue_module.Queue.get
        _saved["Queue.put"] = queue_module.Queue.put

        def _make_lock():
            checker.locks_created += 1
            return InstrumentedLock(
                checker, _saved["Lock"](), _creation_site(), reentrant=False
            )

        def _make_rlock():
            checker.locks_created += 1
            return InstrumentedLock(
                checker, _saved["RLock"](), _creation_site(), reentrant=True
            )

        original_join = _saved["Thread.join"]
        original_get = _saved["Queue.get"]
        original_put = _saved["Queue.put"]

        def _join(self, timeout=None):
            checker.note_blocking(f"Thread.join({self.name})")
            return original_join(self, timeout)

        def _get(self, block=True, timeout=None):
            if block and timeout != 0:
                checker.note_blocking("Queue.get(block=True)")
            return original_get(self, block, timeout)

        def _put(self, item, block=True, timeout=None):
            # Only a *bounded* queue can block on put.
            if block and self.maxsize > 0:
                checker.note_blocking("Queue.put(block=True)")
            return original_put(self, item, block, timeout)

        threading.Lock = _make_lock
        threading.RLock = _make_rlock
        threading.Thread.join = _join
        queue_module.Queue.get = _get
        queue_module.Queue.put = _put
        _active = checker
        return checker


def uninstall() -> None:
    """Restore the stdlib factories (idempotent)."""
    global _active
    with _install_mutex:
        if _active is None:
            return
        threading.Lock = _saved.pop("Lock")
        threading.RLock = _saved.pop("RLock")
        threading.Thread.join = _saved.pop("Thread.join")
        queue_module.Queue.get = _saved.pop("Queue.get")
        queue_module.Queue.put = _saved.pop("Queue.put")
        _active = None


@contextlib.contextmanager
def lock_order_checker():
    """Context manager: install, yield the checker, always uninstall."""
    checker = install()
    try:
        yield checker
    finally:
        uninstall()
