"""REP005 — no blocking calls inside ``async def`` bodies in the net layer.

The asyncio front-end multiplexes every client connection onto one
event-loop thread; a single blocking call — ``time.sleep``, a blocking
``queue.get``, a ``ServingFuture.result``/``outcome`` wait, a thread
join, a blocking scheduler/pool ``close()`` — freezes *every*
connection at once.  The bridge discipline is the one ``server.py``
establishes: scheduler outcomes hop onto the loop via
``add_done_callback`` + ``call_soon_threadsafe``; anything else
blocking belongs in ``run_in_executor``.

Scoped to ``src/repro/net/``: the async surface of the codebase.
Nested synchronous ``def``s inside an async function are skipped (they
run wherever they are called — e.g. a ``call_soon_threadsafe`` callback
body is loop-side but not awaited), as are calls on an ``asyncio.*``
receiver (``asyncio.wait`` suspends, it does not block).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.lint import Finding, ModuleInfo
import re

from repro.analysis.rules.common import (
    EVENTISH,
    FUTUREISH,
    QUEUEISH,
    SOCKETISH,
    THREADISH,
    call_func_name,
    dotted_name,
    is_false_constant,
    is_zero_constant,
    keyword_value,
    receiver_dotted,
    receiver_name,
    walk_body,
)

RULE_ID = "REP005"
TITLE = "no blocking calls on the event loop"
HINT = (
    "bridge with add_done_callback + call_soon_threadsafe, await an "
    "asyncio primitive, or offload via loop.run_in_executor"
)

#: Thread-backed subsystems whose ``close()`` joins threads / drains
#: queues.  Narrower than REP001's list: an asyncio ``Server.close()``
#: is non-blocking, so bare ``server`` receivers are not included here.
_THREADED_CLOSEISH = re.compile(r"scheduler|pool", re.IGNORECASE)


def _blocking_reason(call: ast.Call) -> Optional[str]:
    func = call_func_name(call)
    dotted = dotted_name(call.func) or ""
    if dotted in ("time.sleep",) or func == "sleep" and dotted == "sleep":
        return "time.sleep() parks the event loop"
    recv = receiver_name(call)
    if recv is None:
        return None
    if recv == "asyncio" or (receiver_dotted(call) or "").startswith(
        "asyncio"
    ):
        return None
    if func == "get" and QUEUEISH.search(recv):
        if is_false_constant(keyword_value(call, "block")):
            return None
        if is_zero_constant(keyword_value(call, "timeout")):
            return None
        if call.args and is_false_constant(call.args[0]):
            return None
        return f"blocking {recv}.get()"
    if func == "join" and THREADISH.search(recv):
        return f"thread join {recv}.join()"
    if func == "close" and _THREADED_CLOSEISH.search(recv):
        return f"blocking teardown {recv}.close() (joins threads)"
    if func in ("result", "outcome") and FUTUREISH.search(recv):
        return f"blocking wait {recv}.{func}()"
    if func in ("recv", "accept", "connect", "sendall") and SOCKETISH.search(
        recv
    ):
        return f"blocking socket {recv}.{func}()"
    if func == "wait" and EVENTISH.search(recv):
        return f"threading-event wait {recv}.wait()"
    return None


class Rule:
    rule_id = RULE_ID
    title = TITLE
    hint = HINT

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if "net" not in module.relpath.split("/"):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.AsyncFunctionDef):
                continue
            for inner in walk_body(node.body):
                if not isinstance(inner, ast.Call):
                    continue
                reason = _blocking_reason(inner)
                if reason is None:
                    continue
                target = (
                    (receiver_dotted(inner) or "")
                    + ("." if receiver_dotted(inner) else "")
                    + (call_func_name(inner) or "?")
                )
                yield Finding(
                    rule=self.rule_id,
                    path=module.relpath,
                    line=inner.lineno,
                    scope=module.scope_of(inner),
                    detail=f"{target} in async {node.name}",
                    message=(
                        f"{reason} inside `async def {node.name}` — every "
                        f"connection on this loop stalls behind it"
                    ),
                    hint=self.hint,
                )
