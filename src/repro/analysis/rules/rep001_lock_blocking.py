"""REP001 — no blocking or expensive calls inside a ``with <lock>:`` body.

The shape of two shipped bugs: the result-cache deep-copy held under
``_cache_lock`` (serialized every concurrent cache hit) and
``close()`` joining worker threads while holding ``_close_lock``
(every concurrent closer — and anything else touching the lock — stalls
behind a multi-second join).  The fix pattern is always the same: *mark
state under the lock, act outside it*.

Flagged inside a lock body:

* ``copy.deepcopy`` (expensive; starves other lock waiters),
* ``time.sleep`` / bare ``sleep``,
* ``os.fsync`` / ``fsync_directory`` / ``wal_write`` (durable I/O),
* blocking ``<queue>.get(...)`` / ``<queue>.put(...)`` (deadlock bait:
  the unblocking party may need the same lock),
* ``<thread>.join(...)`` / ``<scheduler|pool|server>.close(...)``,
* ``<future|gate|ticket>.result/outcome(...)``,
* ``<socket>.recv/accept/connect/sendall(...)``,
* ``<event|cond>.wait(...)``.

Non-blocking variants (``get_nowait``, ``block=False``, ``timeout=0``)
are not flagged, and a nested function *defined* under the lock is
skipped (it does not run there).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.lint import Finding, ModuleInfo
from repro.analysis.rules.common import (
    CLOSEISH,
    EVENTISH,
    FUTUREISH,
    QUEUEISH,
    SOCKETISH,
    THREADISH,
    call_func_name,
    is_false_constant,
    is_zero_constant,
    keyword_value,
    lock_name_of_with_item,
    receiver_dotted,
    receiver_name,
    walk_body,
)

RULE_ID = "REP001"
TITLE = "no blocking/expensive calls while holding a lock"
HINT = (
    "mark state under the lock, run the blocking call outside it "
    "(release-then-act), or switch to a non-blocking variant"
)

#: Plain function calls that block or burn time regardless of receiver.
_BLOCKING_FUNCS = frozenset(
    {"deepcopy", "sleep", "fsync", "fsync_directory", "wal_write"}
)


def _blocking_reason(call: ast.Call) -> Optional[str]:
    """Why ``call`` is considered blocking, or ``None`` when it isn't."""
    func = call_func_name(call)
    if func in _BLOCKING_FUNCS:
        return f"call to {func}()"
    recv = receiver_name(call)
    if recv is None:
        return None
    if func in ("get", "put") and QUEUEISH.search(recv):
        if is_false_constant(keyword_value(call, "block")):
            return None
        if is_zero_constant(keyword_value(call, "timeout")):
            return None
        # Positional ``q.get(False)`` is the stdlib's block flag.
        if call.args and is_false_constant(call.args[0]):
            return None
        return f"blocking {recv}.{func}()"
    if func == "join" and THREADISH.search(recv):
        return f"thread join {recv}.join()"
    if func == "close" and CLOSEISH.search(recv):
        return f"blocking teardown {recv}.close()"
    if func in ("result", "outcome") and FUTUREISH.search(recv):
        return f"blocking wait {recv}.{func}()"
    if func in ("recv", "accept", "connect", "sendall") and SOCKETISH.search(
        recv
    ):
        return f"socket {recv}.{func}()"
    if func == "wait" and EVENTISH.search(recv):
        return f"blocking wait {recv}.wait()"
    return None


class Rule:
    rule_id = RULE_ID
    title = TITLE
    hint = HINT

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.With):
                continue
            lock_names = [
                name
                for name in (
                    lock_name_of_with_item(item) for item in node.items
                )
                if name is not None
            ]
            if not lock_names:
                continue
            lock = lock_names[0]
            for inner in walk_body(node.body):
                if not isinstance(inner, ast.Call):
                    continue
                reason = _blocking_reason(inner)
                if reason is None:
                    continue
                target = (
                    receiver_dotted(inner) or ""
                ) + ("." if receiver_dotted(inner) else "") + (
                    call_func_name(inner) or "?"
                )
                yield Finding(
                    rule=self.rule_id,
                    path=module.relpath,
                    line=inner.lineno,
                    scope=module.scope_of(inner),
                    detail=f"{target} under {lock}",
                    message=(
                        f"{reason} inside `with {lock}:` — every other "
                        f"thread touching this lock stalls behind it"
                    ),
                    hint=self.hint,
                )
