"""REP002 — every epoch pin released on all paths.

The PR-5 leak shape: ``Session.refresh()`` pinned the new epoch, then
raised while rebasing — and the fresh pin leaked, permanently blocking
retention eviction of that epoch.  The mechanical invariant: a function
that both pins **and** unpins must release on *every* path, which in
this codebase means each ``unpin`` runs inside a ``finally`` suite (the
``try/finally`` discipline of ``BatchScheduler._execute_group``) or in
an ``except`` rollback handler paired with a tail unpin (the
exception-safe swap in ``Session.refresh``, which the baseline records
explicitly).

Functions that only pin (ownership escapes: ``Session.__init__`` hands
the pin to ``close()``) or only unpin are out of scope — pairing across
function boundaries is an ownership contract, not a local invariant.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.analysis.lint import Finding, ModuleInfo
from repro.analysis.rules.common import (
    call_func_name,
    in_except_handler,
    in_finally_block,
)

RULE_ID = "REP002"
TITLE = "epoch pins must be released on all paths"
HINT = (
    "wrap the pinned region in try/finally with the unpin in the "
    "finally suite, or use a context-managed session"
)


class Rule:
    rule_id = RULE_ID
    title = TITLE
    hint = HINT

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            pins: List[ast.Call] = []
            unpins: List[ast.Call] = []
            for inner in ast.walk(node):
                if isinstance(inner, ast.Call):
                    name = call_func_name(inner)
                    if name == "pin":
                        pins.append(inner)
                    elif name == "unpin":
                        unpins.append(inner)
            if not pins or not unpins:
                continue
            unguarded = [
                unpin
                for unpin in unpins
                if not in_finally_block(module, unpin)
                and not in_except_handler(module, unpin)
            ]
            if not unguarded:
                continue
            pin = pins[0]
            yield Finding(
                rule=self.rule_id,
                path=module.relpath,
                line=pin.lineno,
                scope=module.scope_of(pin),
                detail="pin/unpin without finally",
                message=(
                    "pin() is released by an unpin() outside any "
                    "finally/rollback suite — an exception between them "
                    "leaks the pin and blocks epoch retention forever"
                ),
                hint=self.hint,
            )
