"""REP006 — no unordered set iteration feeding stats or wire output.

The bit-identity invariant: results **and** simulated statistics must
be byte-for-byte reproducible across engines, processes and the wire
(the parity suites, the crash matrix and the network benchmark all
assert it).  Python ``set`` iteration order depends on insertion
history and hash seeding, so a ``for`` loop over a set that feeds an
accounting counter, a wire frame or a durable write can produce
run-dependent byte streams — the class of bug that only surfaces as a
flaky differential test three PRs later.

Flagged: ``for x in <set>:`` — where ``<set>`` is a set literal, a set
comprehension, a ``set(...)`` call, or a name bound from one — whose
body calls an accounting sink (``add_counter``, ``note_served``,
``count``, ``absorb_lifetime``) or a wire/durability sink (``send``,
``send_error``, ``encode_frame``, ``wal_write``, ``write``).  Wrapping
the iterable in ``sorted(...)`` clears the finding (dict iteration is
insertion-ordered and therefore deterministic; it is not flagged).
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.analysis.lint import Finding, ModuleInfo
from repro.analysis.rules.common import call_func_name, walk_body

RULE_ID = "REP006"
TITLE = "set iteration feeding stats/wire output must be sorted"
HINT = (
    "iterate `sorted(the_set)` so counters and wire bytes are "
    "bit-identical across runs, engines and processes"
)

#: Calls inside the loop body that make iteration order observable.
_SINKS = frozenset(
    {
        "add_counter",
        "note_served",
        "count",
        "absorb_lifetime",
        "send",
        "send_error",
        "encode_frame",
        "wal_write",
        "write",
    }
)


def _is_set_expr(node: ast.AST, set_names: Set[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and call_func_name(node) == "set":
        return True
    if isinstance(node, ast.Name) and node.id in set_names:
        return True
    # Set algebra on known sets stays a set: ``visited | frontier``.
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_set_expr(node.left, set_names) or _is_set_expr(
            node.right, set_names
        )
    return False


class Rule:
    rule_id = RULE_ID
    title = TITLE
    hint = HINT

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for function in ast.walk(module.tree):
            if not isinstance(
                function, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            set_names: Set[str] = set()
            nodes = [
                node
                for node in ast.walk(function)
                if isinstance(node, (ast.Assign, ast.For, ast.AnnAssign))
            ]
            nodes.sort(key=lambda node: (node.lineno, node.col_offset))
            for node in nodes:
                if isinstance(node, ast.Assign):
                    is_set = _is_set_expr(node.value, set_names)
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            if is_set:
                                set_names.add(target.id)
                            else:
                                set_names.discard(target.id)
                elif isinstance(node, ast.AnnAssign):
                    if node.value is not None and isinstance(
                        node.target, ast.Name
                    ):
                        if _is_set_expr(node.value, set_names):
                            set_names.add(node.target.id)
                        else:
                            set_names.discard(node.target.id)
                elif isinstance(node, ast.For):
                    yield from self._check_loop(module, node, set_names)

    def _check_loop(
        self, module: ModuleInfo, loop: ast.For, set_names: Set[str]
    ) -> Iterator[Finding]:
        iterable = loop.iter
        if isinstance(iterable, ast.Call) and call_func_name(iterable) in (
            "sorted",
            "enumerate",  # enumerate(sorted(...)) handled via args below
        ):
            if call_func_name(iterable) == "sorted":
                return
            if iterable.args and isinstance(
                iterable.args[0], ast.Call
            ) and call_func_name(iterable.args[0]) == "sorted":
                return
            iterable = iterable.args[0] if iterable.args else iterable
        if not _is_set_expr(iterable, set_names):
            return
        sinks = sorted(
            {
                call_func_name(inner)
                for inner in walk_body(loop.body)
                if isinstance(inner, ast.Call)
                and call_func_name(inner) in _SINKS
            }
        )
        if not sinks:
            return
        yield Finding(
            rule=self.rule_id,
            path=module.relpath,
            line=loop.lineno,
            scope=module.scope_of(loop),
            detail=f"set iteration feeding {','.join(sinks)}",
            message=(
                f"iteration over an unordered set feeds "
                f"{', '.join(sinks)}() — the emitted order (and so the "
                f"bytes/counters) varies run to run"
            ),
            hint=self.hint,
        )
