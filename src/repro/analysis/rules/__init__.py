"""The project-specific rule registry (REP001 — REP006).

Each rule module exposes a ``Rule`` class with ``rule_id``, ``title``,
``hint`` and ``check(module) -> Iterator[Finding]``.  ``all_rules()``
is the default set the CLI and CI run; tests instantiate individual
rules to prove each one fires (and stays quiet) on fixture snippets.
"""

from __future__ import annotations

from typing import List

from repro.analysis.rules import (
    rep001_lock_blocking,
    rep002_pin_pairing,
    rep003_wal_funnel,
    rep004_frozen_mutation,
    rep005_async_blocking,
    rep006_unordered_iteration,
)

_RULE_MODULES = (
    rep001_lock_blocking,
    rep002_pin_pairing,
    rep003_wal_funnel,
    rep004_frozen_mutation,
    rep005_async_blocking,
    rep006_unordered_iteration,
)


def all_rules() -> List[object]:
    """One instance of every registered rule, in rule-id order."""
    return [module.Rule() for module in _RULE_MODULES]


def rule_by_id(rule_id: str):
    """Look up a single rule instance (tests disable/select rules)."""
    for module in _RULE_MODULES:
        if module.Rule.rule_id == rule_id.upper():
            return module.Rule()
    raise KeyError(f"unknown rule id {rule_id!r}")


__all__ = ["all_rules", "rule_by_id"]
