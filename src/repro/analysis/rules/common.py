"""Shared AST helpers for the REP rules.

Everything here is heuristic name-based analysis: the rules target
*this* codebase's naming conventions (``*_lock``, ``*_queue``,
``pin``/``unpin``, ``wal_write``), which is what makes a six-rule
project linter precise enough to gate CI where a general-purpose tool
could not be.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Optional

#: Context-manager expressions that look like mutual-exclusion locks.
LOCKISH = re.compile(r"lock|mutex", re.IGNORECASE)
#: Receivers that look like (threading) queues.
QUEUEISH = re.compile(r"queue|_q$|^q$", re.IGNORECASE)
#: Receivers that look like joinable threads / worker handles.
THREADISH = re.compile(
    r"thread|worker|gather|collector|drain|daemon|proc", re.IGNORECASE
)
#: Receivers that look like one-shot future/result gates.
FUTUREISH = re.compile(r"future|gate|ticket|outcome", re.IGNORECASE)
#: Receivers that look like sockets / connections.
SOCKETISH = re.compile(r"sock|conn", re.IGNORECASE)
#: Receivers that look like threading events / condition variables.
EVENTISH = re.compile(
    r"event|cond|started|closed|done|ready|stop", re.IGNORECASE
)
#: Receivers that look like blocking-close subsystems (scheduler/pool
#: close() joins threads and drains queues).
CLOSEISH = re.compile(r"scheduler|pool|server", re.IGNORECASE)


def terminal_name(node: ast.AST) -> Optional[str]:
    """The final identifier of a Name/Attribute chain (``a.b.c`` -> c)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def dotted_name(node: ast.AST) -> Optional[str]:
    """Full dotted path of a Name/Attribute chain, or ``None``."""
    parts = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


def call_func_name(call: ast.Call) -> Optional[str]:
    """Terminal name of the called function (``copy.deepcopy`` -> deepcopy)."""
    return terminal_name(call.func)


def receiver_name(call: ast.Call) -> Optional[str]:
    """Terminal name of a method call's receiver (``self._q.get`` -> _q)."""
    if isinstance(call.func, ast.Attribute):
        return terminal_name(call.func.value)
    return None


def receiver_dotted(call: ast.Call) -> Optional[str]:
    """Dotted path of a method call's receiver, or ``None``."""
    if isinstance(call.func, ast.Attribute):
        return dotted_name(call.func.value)
    return None


def keyword_value(call: ast.Call, name: str) -> Optional[ast.AST]:
    """The AST value of keyword argument ``name``, if present."""
    for keyword in call.keywords:
        if keyword.arg == name:
            return keyword.value
    return None


def is_false_constant(node: Optional[ast.AST]) -> bool:
    return isinstance(node, ast.Constant) and node.value is False


def is_zero_constant(node: Optional[ast.AST]) -> bool:
    return isinstance(node, ast.Constant) and node.value == 0


def walk_body(nodes, *, skip_nested_functions: bool = True) -> Iterator[ast.AST]:
    """Walk statements (and their subtrees) of a body.

    ``skip_nested_functions`` stops at nested def/async-def boundaries:
    a closure defined inside a ``with lock:`` body does not *run* under
    the lock.
    """
    stack = list(nodes)
    while stack:
        node = stack.pop()
        yield node
        if skip_nested_functions and isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


def lock_name_of_with_item(item: ast.withitem) -> Optional[str]:
    """Lock name when a ``with`` item is a lock acquisition, else None."""
    expr = item.context_expr
    # ``with self._lock:`` / ``with lock:``
    name = terminal_name(expr)
    if name is not None and LOCKISH.search(name):
        return dotted_name(expr) or name
    # ``with self._lock.acquire_timeout(...):``-style helper calls.
    if isinstance(expr, ast.Call):
        recv = receiver_name(expr)
        if recv is not None and LOCKISH.search(recv):
            return receiver_dotted(expr) or recv
    return None


def in_finally_block(module, node: ast.AST) -> bool:
    """Whether ``node`` sits inside some ``try``'s ``finally`` suite."""
    child = node
    parent = module.parents.get(child)
    while parent is not None:
        if isinstance(parent, ast.Try):
            for stmt in parent.finalbody:
                if child is stmt or _contains(stmt, child):
                    return True
        child, parent = parent, module.parents.get(parent)
    return False


def in_except_handler(module, node: ast.AST) -> bool:
    """Whether ``node`` sits inside an ``except`` handler suite."""
    current = module.parents.get(node)
    while current is not None:
        if isinstance(current, ast.ExceptHandler):
            return True
        current = module.parents.get(current)
    return False


def _contains(root: ast.AST, target: ast.AST) -> bool:
    for node in ast.walk(root):
        if node is target:
            return True
    return False
