"""REP004 — no in-place mutation of frozen-snapshot arrays.

Epochs publish frozen CSR arrays (``writeable=False``) that every
concurrent reader shares zero-copy; sessions, the scheduler, worker
processes and the result cache all rely on those arrays never changing.
Mutating one would either raise at runtime (numpy honors the flag) or —
worse, through a view or an ``out=`` kwarg on a copy that aliases the
base — silently corrupt every other reader of the epoch.

The rule taints variables bound from frozen-snapshot accessors
(``to_csr``, ``snapshot_of``, ``reverse_snapshot_of``,
``degree_histogram``, ``freeze``, plus attribute loads off a tainted
variable like ``snap.indptr``) and flags in-place mutation of tainted
names: subscript stores, augmented assignment, ``.sort()`` /
``.fill()`` / ``.partition()`` / ``.resize()`` calls, and ``out=``
keywords.  Rebinding a name (``x = x.copy()``) clears its taint.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Set

from repro.analysis.lint import Finding, ModuleInfo
from repro.analysis.rules.common import call_func_name

RULE_ID = "REP004"
TITLE = "frozen snapshot arrays are immutable"
HINT = (
    "work on a copy (arr.copy()) or build the result into a fresh "
    "array — epoch snapshots are shared zero-copy across readers"
)

#: Calls whose results are frozen shared state.
FROZEN_ACCESSORS = frozenset(
    {
        "to_csr",
        "snapshot_of",
        "reverse_snapshot_of",
        "degree_histogram",
        "freeze",
    }
)

#: ndarray methods that mutate in place.
_MUTATORS = frozenset({"sort", "fill", "partition", "resize", "put"})


def _base_name(node: ast.AST) -> str:
    """Leftmost Name of a Name/Attribute/Subscript chain ('' if none)."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return ""


class Rule:
    rule_id = RULE_ID
    title = TITLE
    hint = HINT

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(module, node)

    def _check_function(
        self, module: ModuleInfo, function: ast.AST
    ) -> Iterator[Finding]:
        tainted: Set[str] = set()
        origins: Dict[str, str] = {}
        # Single forward pass in source order: taint assignments first,
        # then flag mutations of currently-tainted names.  Rebinding a
        # tainted name to anything else clears it.
        statements = [
            node
            for node in ast.walk(function)
            if isinstance(
                node, (ast.Assign, ast.AugAssign, ast.Expr, ast.Call)
            )
        ]
        statements.sort(key=lambda node: (node.lineno, node.col_offset))
        for node in statements:
            if isinstance(node, ast.Assign):
                yield from self._flag_subscript_stores(
                    module, node, tainted, origins
                )
                source = self._taint_source(node.value, tainted)
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        if source is not None:
                            tainted.add(target.id)
                            origins[target.id] = source
                        else:
                            tainted.discard(target.id)
            elif isinstance(node, ast.AugAssign):
                base = _base_name(node.target)
                if base in tainted:
                    yield self._finding(
                        module,
                        node,
                        f"augmented assignment to {base}",
                        origins.get(base, "?"),
                    )
            elif isinstance(node, ast.Call):
                yield from self._flag_call(module, node, tainted, origins)

    def _taint_source(
        self, value: ast.AST, tainted: Set[str]
    ) -> Optional[str]:
        """Accessor name when ``value`` yields frozen state, else None."""
        if isinstance(value, ast.Call):
            name = call_func_name(value)
            if name in FROZEN_ACCESSORS:
                return name
        # Attribute load off a tainted variable: ``snap.indptr``.
        if isinstance(value, ast.Attribute):
            base = _base_name(value)
            if base in tainted:
                return f"{base}.{value.attr}"
        return None

    def _flag_subscript_stores(
        self, module, assign: ast.Assign, tainted: Set[str], origins
    ) -> Iterator[Finding]:
        for target in assign.targets:
            if isinstance(target, ast.Subscript):
                base = _base_name(target)
                if base in tainted:
                    yield self._finding(
                        module,
                        assign,
                        f"subscript store into {base}[...]",
                        origins.get(base, "?"),
                    )

    def _flag_call(
        self, module, call: ast.Call, tainted: Set[str], origins
    ) -> Iterator[Finding]:
        if isinstance(call.func, ast.Attribute):
            func = call.func.attr
            base = _base_name(call.func.value)
            if func in _MUTATORS and base in tainted:
                yield self._finding(
                    module,
                    call,
                    f"in-place {base}.{func}()",
                    origins.get(base, "?"),
                )
        for keyword in call.keywords:
            if keyword.arg == "out" and isinstance(keyword.value, ast.Name):
                if keyword.value.id in tainted:
                    yield self._finding(
                        module,
                        call,
                        f"out={keyword.value.id} kwarg",
                        origins.get(keyword.value.id, "?"),
                    )

    def _finding(self, module, node, what: str, origin: str) -> Finding:
        return Finding(
            rule=self.rule_id,
            path=module.relpath,
            line=node.lineno,
            scope=module.scope_of(node),
            detail=what,
            message=(
                f"{what} mutates an array obtained from frozen accessor "
                f"`{origin}` — epoch snapshots are shared, immutable state"
            ),
            hint=self.hint,
        )
