"""REP003 — durable bytes funnel through ``wal_write``/``fsync_directory``.

The whole crash matrix rests on one property: *every* durable byte of
the WAL and of checkpoints goes through ``wal.wal_write``, and every
directory-entry barrier through ``wal.fsync_directory`` — that is what
lets the fault-injection harness kill the process at (and inside) every
durable write deterministically.  A raw ``handle.write()`` or
``os.write()`` added anywhere in ``src/repro/durability/`` silently
escapes the crash matrix: the new write path ships untested against
torn writes.

Flagged (in durability files only): ``<handle>.write(...)`` and
``os.write(...)`` outside the body of ``wal_write`` itself, and
``os.fsync(...)`` outside ``fsync_directory``.  File-handle fsyncs that
deliberately sit next to a funneled write carry an inline noqa with the
justification.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.lint import Finding, ModuleInfo
from repro.analysis.rules.common import call_func_name, dotted_name

RULE_ID = "REP003"
TITLE = "durable writes must use the wal_write/fsync_directory funnel"
HINT = (
    "route the bytes through repro.durability.wal.wal_write (and "
    "directory barriers through wal.fsync_directory) so the "
    "fault-injection crash matrix covers the new write path"
)

#: Functions that ARE the funnel: raw I/O inside them is the point.
_FUNNEL_FUNCTIONS = frozenset({"wal_write", "fsync_directory"})


class Rule:
    rule_id = RULE_ID
    title = TITLE
    hint = HINT

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if "durability" not in module.relpath.split("/"):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = call_func_name(node)
            dotted = dotted_name(node.func) or ""
            raw_write = func == "write" or dotted == "os.write"
            raw_fsync = dotted == "os.fsync"
            if not raw_write and not raw_fsync:
                continue
            enclosing = module.enclosing_function(node)
            enclosing_name = getattr(enclosing, "name", "<module>")
            if enclosing_name in _FUNNEL_FUNCTIONS:
                continue
            kind = "write" if raw_write else "fsync"
            yield Finding(
                rule=self.rule_id,
                path=module.relpath,
                line=node.lineno,
                scope=module.scope_of(node),
                detail=f"raw {dotted or func} in {enclosing_name}",
                message=(
                    f"raw durable {kind} ({dotted or func}) bypasses the "
                    f"wal_write/fsync_directory funnel — the crash matrix "
                    f"cannot tear this write"
                ),
                hint=self.hint,
            )
