"""The AST lint framework behind ``python -m repro.analysis``.

The framework is deliberately small: a rule is any object with a
``rule_id``, a ``title``, a ``hint`` and a ``check(module)`` generator
yielding :class:`Finding` records.  The runner loads each Python file
once into a :class:`ModuleInfo` (source, parsed tree, parent links,
per-line suppression comments) and hands it to every registered rule.

Two suppression mechanisms make deliberate exceptions *explicit*:

* **Inline**: ``# repro: noqa REP001 — <why>`` on the flagged line
  suppresses that rule there.  The justification text is required by
  convention (reviewers reject bare noqas), not by the parser.
* **Baseline**: a JSON file (``analysis-baseline.json`` at the repo
  root) of known findings keyed by ``(rule, path, scope, detail)`` —
  line-number free, so unrelated edits don't invalidate entries.  Each
  entry carries a one-line ``justification``.  ``--update-baseline``
  rewrites the file from the current findings, preserving existing
  justifications.

The CLI exits nonzero when any finding is neither inline-suppressed nor
baselined, which is what makes the ``analysis`` CI job a gate.
"""

from __future__ import annotations

import ast
import json
import os
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

#: Inline suppression syntax: ``# repro: noqa REP001`` (optionally a
#: comma/space separated list of rule ids, optionally followed by a
#: justification after a dash).  Example::
#:
#:     os.fsync(fd)  # repro: noqa REP003 — file fsync has no funnel
_NOQA = re.compile(
    r"#\s*repro:\s*noqa\s+(?P<rules>REP\d{3}(?:[,\s]+REP\d{3})*)",
    re.IGNORECASE,
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at a concrete source location.

    ``scope`` is the dotted class/function path enclosing the finding
    (``BatchScheduler.close``) and ``detail`` a short, stable
    description of the flagged construct — together with ``rule`` and
    ``path`` they form the line-number-free baseline key.
    """

    rule: str
    path: str
    line: int
    message: str
    hint: str
    scope: str = "<module>"
    detail: str = ""

    def key(self) -> Tuple[str, str, str, str]:
        """Baseline identity: stable across unrelated line drift."""
        return (self.rule, self.path, self.scope, self.detail)

    def render(self) -> str:
        """One-line human-readable report entry."""
        return (
            f"{self.path}:{self.line}: {self.rule} [{self.scope}] "
            f"{self.message}\n    hint: {self.hint}"
        )

    def to_json(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "scope": self.scope,
            "detail": self.detail,
            "message": self.message,
            "hint": self.hint,
        }


class ModuleInfo:
    """One loaded source file: tree, parent links, suppressions."""

    def __init__(self, path: str, relpath: str, source: str) -> None:
        self.path = path
        #: Repo-relative POSIX path — what findings and baselines carry.
        self.relpath = relpath.replace(os.sep, "/")
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=path)
        #: Child -> parent links for upward walks (enclosing scopes).
        self.parents: Dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self.parents[child] = parent
        #: line number -> frozenset of inline-suppressed rule ids.  A
        #: noqa on a comment-only line also covers the next code line,
        #: so long justifications can sit above the flagged statement.
        self.suppressions: Dict[int, frozenset] = {}
        pending: frozenset = frozenset()
        for number, line in enumerate(self.lines, start=1):
            match = _NOQA.search(line)
            rules = frozenset()
            if match:
                rules = frozenset(
                    rule.upper()
                    for rule in re.split(r"[,\s]+", match.group("rules"))
                    if rule
                )
            stripped = line.strip()
            if stripped.startswith("#"):
                pending = pending | rules
                continue
            if rules or pending:
                self.suppressions[number] = rules | pending
            if stripped:
                pending = frozenset()

    def suppressed(self, rule: str, line: int) -> bool:
        """Whether ``rule`` is inline-noqa'd on ``line``."""
        return rule.upper() in self.suppressions.get(line, frozenset())

    def scope_of(self, node: ast.AST) -> str:
        """Dotted class/function path enclosing ``node``."""
        parts: List[str] = []
        current: Optional[ast.AST] = node
        while current is not None:
            if isinstance(
                current,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
            ):
                parts.append(current.name)
            current = self.parents.get(current)
        return ".".join(reversed(parts)) or "<module>"

    def enclosing_function(
        self, node: ast.AST
    ) -> Optional[ast.AST]:
        """Nearest enclosing (async) function definition, if any."""
        current = self.parents.get(node)
        while current is not None:
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return current
            current = self.parents.get(current)
        return None


class Baseline:
    """Known findings with justifications (the explicit-exception file)."""

    def __init__(self, entries: Optional[List[Dict[str, str]]] = None) -> None:
        self.entries: List[Dict[str, str]] = entries or []
        self._keys = {
            (
                entry.get("rule", ""),
                entry.get("path", ""),
                entry.get("scope", ""),
                entry.get("detail", ""),
            )
            for entry in self.entries
        }

    @classmethod
    def load(cls, path: str) -> "Baseline":
        if not os.path.exists(path):
            return cls()
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        entries = data.get("entries", [])
        if not isinstance(entries, list):
            raise ValueError(f"malformed baseline file {path!r}")
        return cls(entries)

    def covers(self, finding: Finding) -> bool:
        return finding.key() in self._keys

    def justification_of(self, finding: Finding) -> Optional[str]:
        for entry in self.entries:
            key = (
                entry.get("rule", ""),
                entry.get("path", ""),
                entry.get("scope", ""),
                entry.get("detail", ""),
            )
            if key == finding.key():
                return entry.get("justification")
        return None

    @classmethod
    def from_findings(
        cls, findings: Sequence[Finding], previous: "Baseline"
    ) -> "Baseline":
        """Rebuild from current findings, keeping old justifications."""
        entries = []
        seen = set()
        for finding in findings:
            if finding.key() in seen:
                continue
            seen.add(finding.key())
            justification = previous.justification_of(finding)
            entries.append(
                {
                    "rule": finding.rule,
                    "path": finding.path,
                    "scope": finding.scope,
                    "detail": finding.detail,
                    "justification": justification
                    or "TODO — justify or fix",
                }
            )
        return cls(entries)

    def save(self, path: str) -> None:
        payload = {
            "comment": (
                "Deliberate exceptions to repro.analysis rules; every "
                "entry needs a one-line justification.  Regenerate with "
                "python -m repro.analysis --update-baseline."
            ),
            "entries": sorted(
                self.entries,
                key=lambda entry: (
                    entry.get("rule", ""),
                    entry.get("path", ""),
                    entry.get("scope", ""),
                    entry.get("detail", ""),
                ),
            ),
        }
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=False)
            handle.write("\n")


@dataclass
class LintReport:
    """Outcome of one lint run, split by suppression status."""

    findings: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    suppressed: int = 0
    files_checked: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings


class LintRunner:
    """Loads files and drives every registered rule over them."""

    def __init__(self, rules: Optional[Sequence] = None, root: str = ".") -> None:
        if rules is None:
            from repro.analysis.rules import all_rules

            rules = all_rules()
        self.rules = list(rules)
        self.root = os.path.abspath(root)

    def load(self, path: str) -> Optional[ModuleInfo]:
        """Read and parse one file (``None`` for unparseable sources)."""
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        relpath = os.path.relpath(os.path.abspath(path), self.root)
        try:
            return ModuleInfo(path, relpath, source)
        except SyntaxError:
            return None

    def check_module(self, module: ModuleInfo) -> List[Finding]:
        """Run every rule over one loaded module (inline noqa applied)."""
        findings: List[Finding] = []
        for rule in self.rules:
            for finding in rule.check(module):
                if not module.suppressed(finding.rule, finding.line):
                    findings.append(finding)
        return findings

    def check_source(
        self, source: str, relpath: str = "<snippet>.py"
    ) -> List[Finding]:
        """Lint an in-memory snippet — the unit-test entry point."""
        module = ModuleInfo(relpath, relpath, source)
        return self.check_module(module)

    def run(
        self, paths: Iterable[str], baseline: Optional[Baseline] = None
    ) -> LintReport:
        """Lint every ``.py`` file under ``paths`` against ``baseline``."""
        baseline = baseline or Baseline()
        report = LintReport()
        for path in sorted(_iter_python_files(paths)):
            module = self.load(path)
            if module is None:
                continue
            report.files_checked += 1
            suppressed_before = len(module.suppressions)
            for finding in self.check_module(module):
                if baseline.covers(finding):
                    report.baselined.append(finding)
                else:
                    report.findings.append(finding)
            report.suppressed += suppressed_before
        report.findings.sort(key=lambda f: (f.path, f.line, f.rule))
        report.baselined.sort(key=lambda f: (f.path, f.line, f.rule))
        return report


def _iter_python_files(paths: Iterable[str]) -> Iterator[str]:
    for path in paths:
        if os.path.isfile(path):
            if path.endswith(".py"):
                yield path
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = [
                name for name in dirnames
                if name not in ("__pycache__", ".git")
            ]
            for filename in filenames:
                if filename.endswith(".py"):
                    yield os.path.join(dirpath, filename)


def run_lint(
    paths: Iterable[str],
    baseline_path: Optional[str] = None,
    root: str = ".",
) -> LintReport:
    """Convenience wrapper: lint ``paths`` with the default rule set."""
    baseline = (
        Baseline.load(baseline_path) if baseline_path else Baseline()
    )
    return LintRunner(root=root).run(paths, baseline)
