"""``python -m repro.analysis`` — the project-invariant lint CLI.

Runs REP001 — REP006 over ``src/`` (or explicit paths), applies the
inline ``# repro: noqa REP00x — why`` suppressions and the baseline
file, and exits nonzero on any non-baselined finding — the contract the
``analysis`` CI job gates on.

Usage::

    python -m repro.analysis                      # lint src/
    python -m repro.analysis src tests            # explicit paths
    python -m repro.analysis --format json        # machine-readable
    python -m repro.analysis --update-baseline    # accept current findings
    python -m repro.analysis --list-rules         # what gets checked
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from repro.analysis.lint import Baseline, LintRunner
from repro.analysis.rules import all_rules

#: Default baseline location, resolved against the working directory —
#: the repo root in CI and developer checkouts.
DEFAULT_BASELINE = "analysis-baseline.json"


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Project-invariant static analysis (REP001-REP006).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=None,
        help="files/directories to lint (default: src/)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        help=f"baseline file (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline file (report everything)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help=(
            "rewrite the baseline from current findings (existing "
            "justifications are preserved) and exit 0"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every rule id + title and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.rule_id}  {rule.title}")
            print(f"        hint: {rule.hint}")
        return 0

    paths = args.paths or ["src"]
    for path in paths:
        if not os.path.exists(path):
            print(f"error: no such path {path!r}", file=sys.stderr)
            return 2

    runner = LintRunner()
    baseline = (
        Baseline()
        if args.no_baseline
        else Baseline.load(args.baseline)
    )
    report = runner.run(paths, baseline)

    if args.update_baseline:
        merged = Baseline.from_findings(
            report.findings + report.baselined, baseline
        )
        merged.save(args.baseline)
        print(
            f"baseline updated: {len(merged.entries)} entries -> "
            f"{args.baseline}"
        )
        return 0

    if args.format == "json":
        print(
            json.dumps(
                {
                    "files_checked": report.files_checked,
                    "findings": [f.to_json() for f in report.findings],
                    "baselined": [f.to_json() for f in report.baselined],
                },
                indent=2,
            )
        )
    else:
        for finding in report.findings:
            print(finding.render())
        summary = (
            f"{report.files_checked} files checked: "
            f"{len(report.findings)} finding(s), "
            f"{len(report.baselined)} baselined"
        )
        print(("FAIL " if report.findings else "OK ") + summary)
    return 1 if report.findings else 0


if __name__ == "__main__":
    sys.exit(main())
