"""Project-invariant static analysis and runtime concurrency checking.

Every concurrency fix this codebase has shipped — the epoch-pin leak in
``Session.refresh``, the deep-copy held under the result-cache lock, the
shared-``__traceback__`` race on coalesced failures — was an instance of
a *checkable project invariant*: lock discipline, pin/unpin pairing, the
WAL write funnel, frozen-array immutability, asyncio non-blocking rules,
deterministic iteration feeding stats and wire output.  This package
checks those invariants mechanically, in CI, on every change:

:mod:`repro.analysis.lint`
    An AST-walking lint framework (file loader, per-rule visitor
    registry, :class:`~repro.analysis.lint.Finding` records with
    file:line, rule id and a fix hint, plus a baseline/suppression
    mechanism so deliberate exceptions are explicit) driving the
    project-specific rules in :mod:`repro.analysis.rules` (REP001 —
    REP006).  ``python -m repro.analysis`` runs it over ``src/``.

:mod:`repro.analysis.lockcheck`
    An opt-in runtime lock-order checker: instrumented
    ``threading.Lock``/``RLock`` wrappers record per-thread acquisition
    stacks into a global lock-order graph, detect cycles (potential
    ABBA deadlocks) and lock-held-across-``join``/blocking-call
    hazards, and render a report.  The test suite runs under it when
    ``REPRO_LOCKCHECK=1`` (see ``tests/conftest.py``).
"""

from repro.analysis.lint import (
    Baseline,
    Finding,
    LintRunner,
    ModuleInfo,
    run_lint,
)
from repro.analysis.lockcheck import (
    LockOrderChecker,
    lock_order_checker,
)

__all__ = [
    "Baseline",
    "Finding",
    "LintRunner",
    "LockOrderChecker",
    "ModuleInfo",
    "lock_order_checker",
    "run_lint",
]
